#!/usr/bin/env python3
"""Offline markdown link checker for this repository.

Walks every tracked ``*.md`` file and verifies that each local link
target exists:

* relative links resolve against the file's directory (``../tools/README.md``,
  ``docs/TUTORIAL.md``, ``src/core/permeability.hpp``);
* fragment-only links (``#section``) must match a heading in the same file;
* ``path#fragment`` links must match a heading in the target markdown file.

External links (``http://``, ``https://``, ``mailto:``) are deliberately
not fetched — CI must pass offline. Angle-bracket autolinks and links
inside fenced code blocks are ignored, as are the retrieval artifacts
``PAPERS.md`` / ``SNIPPETS.md`` / ``ISSUE.md`` (machine-extracted text
with PDF figure residue, not authored documentation).

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as ``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def strip_fenced_code(lines: list[str]) -> list[tuple[int, str]]:
    """Returns (1-based line number, text) pairs outside fenced blocks."""
    kept = []
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append((number, line))
    return kept


def headings_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        slugs = set()
        lines = path.read_text(encoding="utf-8").splitlines()
        for _, line in strip_fenced_code(lines):
            match = HEADING_RE.match(line)
            if match:
                slugs.add(slugify(match.group(1)))
        cache[path] = slugs
    return cache[path]


def check_file(md: Path, root: Path, cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    lines = md.read_text(encoding="utf-8").splitlines()
    for number, line in strip_fenced_code(lines):
        for regex in (LINK_RE, IMAGE_RE):
            for match in regex.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_PREFIXES):
                    continue
                path_part, _, fragment = target.partition("#")
                if not path_part:  # same-file anchor
                    if slugify(fragment) not in headings_of(md, cache):
                        errors.append(
                            f"{md.relative_to(root)}:{number}: "
                            f"no heading for anchor '#{fragment}'"
                        )
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{number}: "
                        f"broken link '{target}'"
                    )
                    continue
                if fragment and resolved.suffix == ".md":
                    if slugify(fragment) not in headings_of(resolved, cache):
                        errors.append(
                            f"{md.relative_to(root)}:{number}: "
                            f"'{target}' has no heading for '#{fragment}'"
                        )
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    skip_dirs = {"build", ".git"}
    skip_files = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}
    markdown_files = sorted(
        p
        for p in root.rglob("*.md")
        if p.name not in skip_files
        and not any(part in skip_dirs or part.startswith("build")
                    for part in p.relative_to(root).parts)
    )
    cache: dict[Path, set[str]] = {}
    errors = []
    for md in markdown_files:
        errors.extend(check_file(md, root, cache))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(markdown_files)} markdown files, "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
