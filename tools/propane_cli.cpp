// propane — command-line front end for the analysis framework.
//
//   propane analyze <model.txt> [perm.csv]   full report (Tables 2-4 style)
//   propane paths   <model.txt> [perm.csv]   ranked propagation paths
//   propane advise  <model.txt> [perm.csv]   EDM/ERM placement advice
//   propane tree    <model.txt> [perm.csv]   backtrack/trace trees (ASCII)
//   propane dot     <model.txt> [perm.csv]   Graphviz DOT (model+graph+trees)
//   propane influence <model.txt> [perm.csv] max-product influence matrix
//   propane report  <model.txt> [perm.csv]   full markdown report to stdout
//   propane check   <model.txt>              validate a model file
//
// The model file uses the text format of core/model_parser.hpp; the
// optional CSV supplies permeabilities (core/permeability_io.hpp). Without
// a CSV all permeabilities are 0 and only structural outputs are useful.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/contracts.hpp"
#include "core/propane.hpp"

namespace {

using namespace propane;
using namespace propane::core;

int usage() {
  std::fputs(
      "usage: propane <analyze|paths|advise|tree|dot|influence|report|"
      "check> <model.txt> [perm.csv]\n",
      stderr);
  return 2;
}

SystemModel load_model(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open model file '%s'\n", path);
    std::exit(1);
  }
  return parse_system_model(in);
}

SystemPermeability load_permeability(const SystemModel& model,
                                     const char* path) {
  if (path == nullptr) return SystemPermeability(model);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open CSV '%s'\n", path);
    std::exit(1);
  }
  return load_permeability_csv(in, model);
}

void cmd_analyze(const SystemModel& model, const AnalysisReport& report) {
  std::puts("Module measures (Eqs. 2-5):");
  std::puts(module_measures_table(report).render().c_str());
  std::puts("Signal error exposures (Eq. 6):");
  std::puts(signal_exposure_table(report).render().c_str());
  std::puts("Propagation paths (non-zero):");
  std::puts(path_table(report, true).render().c_str());
  std::puts("Placement advice:");
  std::puts(placement_table(report.placement).render().c_str());
  for (const auto& exclusion : report.placement.exclusions) {
    std::printf("do not instrument %-12s %s\n", exclusion.name.c_str(),
                exclusion.reason.c_str());
  }
  (void)model;
}

void cmd_paths(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(path_table(report, false).render().c_str());
}

void cmd_advise(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(placement_table(report.placement).render().c_str());
}

void cmd_tree(const SystemModel& model, const AnalysisReport& report) {
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::printf("Backtrack tree of system output %s:\n",
                model.system_output_name(o).c_str());
    std::puts(render_ascii_tree(model, report.backtrack_trees[o]).c_str());
  }
  for (std::uint32_t i = 0; i < model.system_input_count(); ++i) {
    std::printf("Trace tree of system input %s:\n",
                model.system_input_name(i).c_str());
    std::puts(render_ascii_tree(model, report.trace_trees[i]).c_str());
  }
}

void cmd_dot(const SystemModel& model, const AnalysisReport& report) {
  std::puts(to_dot(model).c_str());
  std::puts(to_dot(model, report.graph).c_str());
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::puts(to_dot(model, report.backtrack_trees[o],
                     "backtrack " + model.system_output_name(o))
                  .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    const SystemModel model = load_model(argv[2]);
    if (command == "check") {
      std::printf("OK: %zu modules, %zu system inputs, %zu system outputs, "
                  "%zu I/O pairs\n",
                  model.module_count(), model.system_input_count(),
                  model.system_output_count(), model.io_pair_count());
      return 0;
    }
    const SystemPermeability permeability =
        load_permeability(model, argc >= 4 ? argv[3] : nullptr);
    const AnalysisReport report = analyze(model, permeability);
    if (command == "analyze") {
      cmd_analyze(model, report);
    } else if (command == "paths") {
      cmd_paths(model, report);
    } else if (command == "advise") {
      cmd_advise(model, report);
    } else if (command == "tree") {
      cmd_tree(model, report);
    } else if (command == "dot") {
      cmd_dot(model, report);
    } else if (command == "report") {
      ReportOptions report_options;
      report_options.title =
          std::string("Error propagation analysis: ") + argv[2];
      write_markdown_report(std::cout, model, report, report_options);
    } else if (command == "influence") {
      const InfluenceMatrix matrix(model, permeability);
      std::puts("Strongest-route influence, system inputs x outputs:");
      std::puts(matrix.boundary_table(model).render().c_str());
      std::puts("Full signal x signal matrix:");
      std::puts(matrix.full_table().render().c_str());
    } else {
      return usage();
    }
  } catch (const propane::ContractViolation& err) {
    std::fprintf(stderr, "propane: %s\n", err.what());
    return 1;
  }
  return 0;
}
