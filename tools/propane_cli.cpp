// propane — command-line front end for the analysis framework.
//
//   propane analyze <model.txt> [perm.csv]   full report (Tables 2-4 style)
//   propane paths   <model.txt> [perm.csv]   ranked propagation paths
//   propane advise  <model.txt> [perm.csv]   EDM/ERM placement advice
//   propane tree    <model.txt> [perm.csv]   backtrack/trace trees (ASCII)
//   propane dot     <model.txt> [perm.csv]   Graphviz DOT (model+graph+trees)
//   propane influence <model.txt> [perm.csv] max-product influence matrix
//   propane report  <model.txt> [perm.csv]   full markdown report to stdout
//   propane check   <model.txt>              validate a model file
//
// Durable campaigns against the built-in arrestment system (store/):
//
//   propane campaign run    --journal <dir> [--scale full|default|small]
//                           [--shards N] [--processes N --index I]
//   propane campaign resume --journal <dir> ...   (alias of run: a journal
//                           directory resumes wherever it left off)
//   propane campaign merge  --journal <dest> <src-dir>...
//   propane campaign stats  --journal <dir> [--csv <perm.csv>]
//
// The model file uses the text format of core/model_parser.hpp; the
// optional CSV supplies permeabilities (core/permeability_io.hpp). Without
// a CSV all permeabilities are 0 and only structural outputs are useful.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "arrestment/testcase.hpp"
#include "common/contracts.hpp"
#include "core/propane.hpp"
#include "exp/paper_experiment.hpp"
#include "store/resume.hpp"

namespace {

using namespace propane;
using namespace propane::core;

int usage() {
  std::fputs(
      "usage: propane <analyze|paths|advise|tree|dot|influence|report|"
      "check> <model.txt> [perm.csv]\n"
      "       propane campaign <run|resume> --journal <dir>"
      " [--scale full|default|small] [--shards N] [--processes N --index I]\n"
      "       propane campaign merge --journal <dest-dir> <src-dir>...\n"
      "       propane campaign stats --journal <dir> [--csv <perm.csv>]\n",
      stderr);
  return 2;
}

SystemModel load_model(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open model file '%s'\n", path);
    std::exit(1);
  }
  return parse_system_model(in);
}

SystemPermeability load_permeability(const SystemModel& model,
                                     const char* path) {
  if (path == nullptr) return SystemPermeability(model);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open CSV '%s'\n", path);
    std::exit(1);
  }
  return load_permeability_csv(in, model);
}

void cmd_analyze(const SystemModel& model, const AnalysisReport& report) {
  std::puts("Module measures (Eqs. 2-5):");
  std::puts(module_measures_table(report).render().c_str());
  std::puts("Signal error exposures (Eq. 6):");
  std::puts(signal_exposure_table(report).render().c_str());
  std::puts("Propagation paths (non-zero):");
  std::puts(path_table(report, true).render().c_str());
  std::puts("Placement advice:");
  std::puts(placement_table(report.placement).render().c_str());
  for (const auto& exclusion : report.placement.exclusions) {
    std::printf("do not instrument %-12s %s\n", exclusion.name.c_str(),
                exclusion.reason.c_str());
  }
  (void)model;
}

void cmd_paths(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(path_table(report, false).render().c_str());
}

void cmd_advise(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(placement_table(report.placement).render().c_str());
}

void cmd_tree(const SystemModel& model, const AnalysisReport& report) {
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::printf("Backtrack tree of system output %s:\n",
                model.system_output_name(o).c_str());
    std::puts(render_ascii_tree(model, report.backtrack_trees[o]).c_str());
  }
  for (std::uint32_t i = 0; i < model.system_input_count(); ++i) {
    std::printf("Trace tree of system input %s:\n",
                model.system_input_name(i).c_str());
    std::puts(render_ascii_tree(model, report.trace_trees[i]).c_str());
  }
}

void cmd_dot(const SystemModel& model, const AnalysisReport& report) {
  std::puts(to_dot(model).c_str());
  std::puts(to_dot(model, report.graph).c_str());
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::puts(to_dot(model, report.backtrack_trees[o],
                     "backtrack " + model.system_output_name(o))
                  .c_str());
  }
}

// --- propane campaign ----------------------------------------------------

struct CampaignArgs {
  std::string sub;
  std::filesystem::path journal;
  std::string scale_name;  // empty: defer to PROPANE_SCALE
  std::size_t shards = 4;
  std::uint32_t processes = 1;
  std::uint32_t index = 0;
  std::string csv_path;
  std::vector<std::filesystem::path> sources;  // merge positionals
};

std::uint64_t parse_count(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "propane: %s expects a number, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

bool parse_campaign_args(int argc, char** argv, CampaignArgs& args) {
  args.sub = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "propane: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      args.journal = value();
    } else if (arg == "--scale") {
      args.scale_name = value();
    } else if (arg == "--shards") {
      args.shards = static_cast<std::size_t>(parse_count("--shards", value()));
    } else if (arg == "--processes") {
      args.processes =
          static_cast<std::uint32_t>(parse_count("--processes", value()));
    } else if (arg == "--index") {
      args.index = static_cast<std::uint32_t>(parse_count("--index", value()));
    } else if (arg == "--csv") {
      args.csv_path = value();
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "propane: unknown campaign flag '%s'\n",
                   arg.c_str());
      return false;
    } else {
      args.sources.emplace_back(arg);
    }
  }
  if (args.journal.empty()) {
    std::fputs("propane: campaign commands need --journal <dir>\n", stderr);
    return false;
  }
  return true;
}

exp::ExperimentScale pick_scale(const std::string& name) {
  if (name.empty()) return exp::scale_from_env();
  if (name == "full" || name == "paper") return exp::paper_scale();
  if (name == "small" || name == "smoke") return exp::smoke_scale();
  if (name == "default") return exp::default_scale();
  std::fprintf(stderr,
               "propane: unknown scale '%s' (full|default|small)\n",
               name.c_str());
  std::exit(2);
}

void print_warnings(const std::vector<std::string>& warnings) {
  for (const std::string& warning : warnings) {
    std::fprintf(stderr, "propane: warning: %s\n", warning.c_str());
  }
}

int cmd_campaign_run(const CampaignArgs& args) {
  const exp::ExperimentScale scale = pick_scale(args.scale_name);
  std::printf("%s\n", exp::describe(scale).c_str());
  const fi::CampaignConfig config = exp::make_campaign_config(scale);
  const std::vector<arr::TestCase> cases =
      scale.custom_cases.empty()
          ? arr::grid_test_cases(scale.mass_count, scale.velocity_count)
          : scale.custom_cases;

  store::JournalRunOptions options;
  options.shard_count = args.shards;
  options.process_count = args.processes;
  options.process_index = args.index;
  const store::JournalRunSummary summary = store::run_journaled_campaign(
      arr::campaign_runner(cases, scale.duration), config, args.journal,
      options);
  print_warnings(summary.warnings);
  std::printf(
      "journal %s: %zu run(s) executed, %zu already journaled, "
      "%zu owned by other process(es), %zu planned\n",
      args.journal.string().c_str(), summary.executed,
      summary.skipped_completed, summary.skipped_foreign, summary.total_runs);
  return 0;
}

int cmd_campaign_merge(const CampaignArgs& args) {
  if (args.sources.empty()) {
    std::fputs("propane: campaign merge needs source directories\n", stderr);
    return 2;
  }
  const store::MergeSummary summary =
      store::merge_journals(args.journal, args.sources);
  print_warnings(summary.warnings);
  std::printf("merged into %s: %zu unique record(s), %zu duplicate(s) dropped\n",
              args.journal.string().c_str(), summary.record_count,
              summary.duplicate_count);
  return 0;
}

int cmd_campaign_stats(const CampaignArgs& args) {
  const SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);
  store::JournalStats stats = [&] {
    if (args.csv_path.empty()) {
      return store::estimate_from_journal(args.journal, model, binding);
    }
    std::ofstream out(args.csv_path);
    if (!out) {
      std::fprintf(stderr, "propane: cannot write CSV '%s'\n",
                   args.csv_path.c_str());
      std::exit(1);
    }
    return store::write_permeability_csv_from_journal(out, args.journal,
                                                      model, binding);
  }();
  print_warnings(stats.warnings);
  std::printf("journal %s: plan 0x%016llx, seed 0x%016llx, %zu of %zu "
              "run(s) journaled, %zu duplicate(s)\n",
              args.journal.string().c_str(),
              static_cast<unsigned long long>(stats.manifest.plan_hash),
              static_cast<unsigned long long>(stats.manifest.seed),
              stats.record_count, stats.manifest.total_runs(),
              stats.duplicate_count);
  std::puts("Estimated permeabilities (Table 1 style):");
  std::puts(exp::table1_permeability(model, stats.estimation).render().c_str());
  if (!args.csv_path.empty()) {
    std::printf("permeability CSV written to %s\n", args.csv_path.c_str());
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  CampaignArgs args;
  if (!parse_campaign_args(argc, argv, args)) return 2;
  if (args.sub == "run" || args.sub == "resume") return cmd_campaign_run(args);
  if (args.sub == "merge") return cmd_campaign_merge(args);
  if (args.sub == "stats") return cmd_campaign_stats(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "campaign") return cmd_campaign(argc, argv);
    const SystemModel model = load_model(argv[2]);
    if (command == "check") {
      std::printf("OK: %zu modules, %zu system inputs, %zu system outputs, "
                  "%zu I/O pairs\n",
                  model.module_count(), model.system_input_count(),
                  model.system_output_count(), model.io_pair_count());
      return 0;
    }
    const SystemPermeability permeability =
        load_permeability(model, argc >= 4 ? argv[3] : nullptr);
    const AnalysisReport report = analyze(model, permeability);
    if (command == "analyze") {
      cmd_analyze(model, report);
    } else if (command == "paths") {
      cmd_paths(model, report);
    } else if (command == "advise") {
      cmd_advise(model, report);
    } else if (command == "tree") {
      cmd_tree(model, report);
    } else if (command == "dot") {
      cmd_dot(model, report);
    } else if (command == "report") {
      ReportOptions report_options;
      report_options.title =
          std::string("Error propagation analysis: ") + argv[2];
      write_markdown_report(std::cout, model, report, report_options);
    } else if (command == "influence") {
      const InfluenceMatrix matrix(model, permeability);
      std::puts("Strongest-route influence, system inputs x outputs:");
      std::puts(matrix.boundary_table(model).render().c_str());
      std::puts("Full signal x signal matrix:");
      std::puts(matrix.full_table().render().c_str());
    } else {
      return usage();
    }
  } catch (const propane::ContractViolation& err) {
    std::fprintf(stderr, "propane: %s\n", err.what());
    return 1;
  }
  return 0;
}
