// propane — command-line front end for the analysis framework.
//
//   propane analyze <model.txt> [perm.csv]   full report (Tables 2-4 style)
//   propane paths   <model.txt> [perm.csv]   ranked propagation paths
//   propane advise  <model.txt> [perm.csv]   EDM/ERM placement advice
//   propane tree    <model.txt> [perm.csv]   backtrack/trace trees (ASCII)
//   propane dot     <model.txt> [perm.csv]   Graphviz DOT (model+graph+trees)
//   propane influence <model.txt> [perm.csv] max-product influence matrix
//   propane report  <model.txt> [perm.csv]   full markdown report to stdout
//   propane check   <model.txt>              validate a model file
//
// Durable campaigns against the built-in arrestment system (store/):
//
//   propane campaign run    --journal <dir> [--scale full|default|small]
//                           [--shards N] [--processes N --index I]
//                           [--metrics-out <file.ndjson>] [--no-telemetry]
//                           [--progress|--no-progress]
//   propane campaign resume --journal <dir> ...   (alias of run: a journal
//                           directory resumes wherever it left off)
//   propane campaign delta  --journal <dir> --baseline <journal-dir>
//                           [--invalidate MODULE[,...]] [--explain] ...
//                           incremental run: replays baseline records whose
//                           fingerprints still match, executes the rest
//   propane campaign merge  --journal <dest> <src-dir>...
//   propane campaign stats  --journal <dir> [--csv <perm.csv>]
//   propane campaign top    --journal <dir> [--metrics-out <file.ndjson>]
//   propane campaign trace  --journal <dir> [--out <trace.json>]
//                           [--postmortem]
//
// Telemetry: campaign run streams NDJSON events (src/obs) to
// <journal>/telemetry.ndjson by default (--metrics-out redirects,
// --no-telemetry disables) and shows a live progress HUD on a TTY
// (--progress forces it on, --no-progress off). `campaign top` summarises
// the event log(s) -- the dispatcher's plus every worker's
// telemetry-w<id>.ndjson: per-event counts, injection latencies,
// divergence rate, journal growth, the final metric values and a
// per-stream breakdown. `campaign trace` merges the same streams (clocks
// aligned via the HELLO handshake) into one Chrome/Perfetto trace-event
// JSON; --postmortem additionally recovers the tail events a SIGKILLed
// worker left in its flight-w<id>.bin ring.
//
// The model file uses the text format of core/model_parser.hpp; the
// optional CSV supplies permeabilities (core/permeability_io.hpp). Without
// a CSV all permeabilities are 0 and only structural outputs are useful.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "arrestment/batch_runner.hpp"
#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "arrestment/testcase.hpp"
#include "arrestment/warm_start.hpp"
#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "core/propane.hpp"
#include "exp/paper_experiment.hpp"
#include "exp/report/bootstrap_report.hpp"
#include "fi/bootstrap.hpp"
#include "fi/campaign.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/ndjson.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "store/result_cache.hpp"
#include "store/resume.hpp"
#include "svc/dispatcher.hpp"
#include "svc/worker.hpp"

namespace {

using namespace propane;
using namespace propane::core;

// The usage text is assembled from per-area blocks so every error path can
// print the block it belongs to; the concatenation (`propane --help`) must
// match the fenced usage block in tools/README.md verbatim (CI runs
// tools/check_cli_help.py against both).
constexpr char kAnalysisUsage[] =
    "usage: propane <analyze|paths|advise|tree|dot|influence|report|"
    "check> <model.txt> [perm.csv]\n";
constexpr char kCampaignUsage[] =
    "       propane campaign <run|resume> --journal <dir>"
    " [--scale full|default|small] [--shards N] [--processes N --index I]\n"
    "                        [--metrics-out <file.ndjson>] [--no-telemetry]"
    " [--progress|--no-progress]\n"
    "       propane campaign delta --journal <dir> --baseline <dir>"
    " [--invalidate MODULE[,MODULE...]] [--explain]\n"
    "                        [plus any campaign run flag]\n"
    "       propane campaign serve --journal <dir> [--workers N]"
    " [--lease-runs N] [plus any campaign run flag]\n"
    "       propane campaign worker --journal <dir> --worker-id N"
    " [plus any campaign run flag]\n"
    "       propane campaign merge --journal <dest-dir> <src-dir>...\n"
    "       propane campaign stats --journal <dir> [--csv <perm.csv>]\n"
    "       propane campaign bootstrap --journal <dir> [-B N] [--seed N]"
    " [--top-k N]\n"
    "                        [--fractions F1,F2,...] [--threads N]"
    " [--out <report-dir>]\n"
    "       propane campaign top   --journal <dir>"
    " [--metrics-out <file.ndjson>]\n"
    "       propane campaign trace --journal <dir> [--out <trace.json>]"
    " [--postmortem]\n";
constexpr char kTrailerUsage[] =
    "       propane --help\n"
    "exit codes: 0 success, 1 runtime/contract error, 2 usage error,"
    " 3 multiple worker failures\n";
const std::string kUsageText =
    std::string(kAnalysisUsage) + kCampaignUsage + kTrailerUsage;

int usage() {
  std::fputs(kUsageText.c_str(), stderr);
  return 2;
}

/// The one shape every usage error takes: the offending detail, then the
/// usage block it violated, then exit code 2. `block` defaults to the full
/// text; campaign paths pass kCampaignUsage.
int usage_error(const std::string& message, const char* block = nullptr) {
  std::fprintf(stderr, "propane: %s\n", message.c_str());
  if (block != nullptr) {
    std::fputs(block, stderr);
  } else {
    std::fputs(kUsageText.c_str(), stderr);
  }
  return 2;
}

SystemModel load_model(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open model file '%s'\n", path);
    std::exit(1);
  }
  return parse_system_model(in);
}

SystemPermeability load_permeability(const SystemModel& model,
                                     const char* path) {
  if (path == nullptr) return SystemPermeability(model);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "propane: cannot open CSV '%s'\n", path);
    std::exit(1);
  }
  return load_permeability_csv(in, model);
}

void cmd_analyze(const SystemModel& model, const AnalysisReport& report) {
  std::puts("Module measures (Eqs. 2-5):");
  std::puts(module_measures_table(report).render().c_str());
  std::puts("Signal error exposures (Eq. 6):");
  std::puts(signal_exposure_table(report).render().c_str());
  std::puts("Propagation paths (non-zero):");
  std::puts(path_table(report, true).render().c_str());
  std::puts("Placement advice:");
  std::puts(placement_table(report.placement).render().c_str());
  for (const auto& exclusion : report.placement.exclusions) {
    std::printf("do not instrument %-12s %s\n", exclusion.name.c_str(),
                exclusion.reason.c_str());
  }
  (void)model;
}

void cmd_paths(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(path_table(report, false).render().c_str());
}

void cmd_advise(const SystemModel& model, const AnalysisReport& report) {
  (void)model;
  std::puts(placement_table(report.placement).render().c_str());
}

void cmd_tree(const SystemModel& model, const AnalysisReport& report) {
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::printf("Backtrack tree of system output %s:\n",
                model.system_output_name(o).c_str());
    std::puts(render_ascii_tree(model, report.backtrack_trees[o]).c_str());
  }
  for (std::uint32_t i = 0; i < model.system_input_count(); ++i) {
    std::printf("Trace tree of system input %s:\n",
                model.system_input_name(i).c_str());
    std::puts(render_ascii_tree(model, report.trace_trees[i]).c_str());
  }
}

void cmd_dot(const SystemModel& model, const AnalysisReport& report) {
  std::puts(to_dot(model).c_str());
  std::puts(to_dot(model, report.graph).c_str());
  for (std::uint32_t o = 0; o < model.system_output_count(); ++o) {
    std::puts(to_dot(model, report.backtrack_trees[o],
                     "backtrack " + model.system_output_name(o))
                  .c_str());
  }
}

// --- propane campaign ----------------------------------------------------

struct CampaignArgs {
  std::string sub;
  std::filesystem::path journal;
  std::string scale_name;  // empty: defer to PROPANE_SCALE
  std::size_t shards = 4;
  std::uint32_t processes = 1;
  std::uint32_t index = 0;
  std::string csv_path;
  std::string metrics_out;   // empty: <journal>/telemetry.ndjson
  bool no_telemetry = false;
  int progress = -1;         // -1 auto (TTY), 0 off, 1 forced on
  std::filesystem::path baseline;  // delta: cached journal directory
  std::string invalidate;    // delta: comma-separated module names
  bool explain = false;      // delta: per-module hit/miss table
  std::vector<std::filesystem::path> sources;  // merge positionals
  std::uint32_t workers = 2;     // serve: worker processes to spawn
  std::uint64_t lease_runs = 0;  // serve: runs per lease (0 = auto)
  std::uint32_t worker_id = 0;   // worker: dispatcher-assigned identity
  std::string trace_out;         // trace: output path (empty: <journal>/trace.json)
  bool postmortem = false;       // trace: recover flight-recorder tails
  std::size_t replicates = 1000;   // bootstrap: -B
  std::uint64_t boot_seed = 42;    // bootstrap: --seed (resampling streams)
  std::size_t top_k = 3;           // bootstrap: ranking-stability threshold
  std::string fractions;           // bootstrap: convergence-study ladder
  std::size_t threads = 0;         // bootstrap: worker threads (0 = auto)
};

std::uint64_t parse_count(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::exit(usage_error(std::string(flag) + " expects a number, got '" +
                              text + "'",
                          kCampaignUsage));
  }
  return value;
}

bool parse_campaign_args(int argc, char** argv, CampaignArgs& args) {
  args.sub = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage_error(arg + " needs a value", kCampaignUsage));
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      args.journal = value();
    } else if (arg == "--scale") {
      args.scale_name = value();
    } else if (arg == "--shards") {
      args.shards = static_cast<std::size_t>(parse_count("--shards", value()));
    } else if (arg == "--processes") {
      args.processes =
          static_cast<std::uint32_t>(parse_count("--processes", value()));
    } else if (arg == "--index") {
      args.index = static_cast<std::uint32_t>(parse_count("--index", value()));
    } else if (arg == "--csv") {
      args.csv_path = value();
    } else if (arg == "--metrics-out") {
      args.metrics_out = value();
    } else if (arg == "--no-telemetry") {
      args.no_telemetry = true;
    } else if (arg == "--baseline") {
      args.baseline = value();
    } else if (arg == "--invalidate") {
      args.invalidate = value();
    } else if (arg == "--explain") {
      args.explain = true;
    } else if (arg == "--progress") {
      args.progress = 1;
    } else if (arg == "--no-progress") {
      args.progress = 0;
    } else if (arg == "--workers") {
      args.workers =
          static_cast<std::uint32_t>(parse_count("--workers", value()));
    } else if (arg == "--lease-runs") {
      args.lease_runs = parse_count("--lease-runs", value());
    } else if (arg == "--worker-id") {
      args.worker_id =
          static_cast<std::uint32_t>(parse_count("--worker-id", value()));
    } else if (arg == "--out") {
      args.trace_out = value();
    } else if (arg == "--postmortem") {
      args.postmortem = true;
    } else if (arg == "-B" || arg == "--replicates") {
      args.replicates =
          static_cast<std::size_t>(parse_count("-B", value()));
    } else if (arg == "--seed") {
      args.boot_seed = parse_count("--seed", value());
    } else if (arg == "--top-k") {
      args.top_k = static_cast<std::size_t>(parse_count("--top-k", value()));
    } else if (arg == "--fractions") {
      args.fractions = value();
    } else if (arg == "--threads") {
      args.threads =
          static_cast<std::size_t>(parse_count("--threads", value()));
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error("unknown campaign flag '" + arg + "'", kCampaignUsage);
      return false;
    } else {
      args.sources.emplace_back(arg);
    }
  }
  // `campaign bootstrap --baseline <dir>` is accepted as an alias for
  // --journal: the bootstrap reads a journal the way delta reads its
  // baseline, so both spellings name the same thing.
  if (args.sub == "bootstrap" && args.journal.empty()) {
    args.journal = args.baseline;
  }
  if (args.journal.empty()) {
    usage_error("campaign commands need --journal <dir>", kCampaignUsage);
    return false;
  }
  return true;
}

exp::ExperimentScale pick_scale(const std::string& name) {
  if (name.empty()) return exp::scale_from_env();
  if (name == "full" || name == "paper") return exp::paper_scale();
  if (name == "small" || name == "smoke") return exp::smoke_scale();
  if (name == "default") return exp::default_scale();
  std::exit(usage_error("unknown scale '" + name + "' (full|default|small)",
                        kCampaignUsage));
}

void print_warnings(const std::vector<std::string>& warnings) {
  for (const std::string& warning : warnings) {
    std::fprintf(stderr, "propane: warning: %s\n", warning.c_str());
  }
}

/// Lane-occupancy summary from batch.group.lanes histogram totals: batched
/// injection lanes over total kernel lane slots (batches x lane width).
/// 1.00 means the planner ran every batch full. Quiet when no batched
/// session contributed.
void print_batch_occupancy(std::uint64_t batches, double lanes) {
  if (batches == 0) return;
  const std::size_t width = fi::kDefaultBatchSize;
  std::printf(
      "batch occupancy: %.2f (%.0f lane(s) across %llu batch(es), "
      "width %zu)\n",
      lanes / (static_cast<double>(batches) * static_cast<double>(width)),
      lanes, static_cast<unsigned long long>(batches), width);
}

// Defined with the telemetry helpers below (campaign top section).
void print_batch_occupancy_from_telemetry(const CampaignArgs& args);

std::filesystem::path telemetry_path(const CampaignArgs& args) {
  return args.metrics_out.empty()
             ? args.journal / "telemetry.ndjson"
             : std::filesystem::path(args.metrics_out);
}

/// Appends the final value of every metric to the event log, one flat
/// "metric" event each, so `campaign top` can show end-of-session values
/// without re-deriving them from the raw event stream.
void emit_metric_events(obs::EventSink& sink,
                        const obs::MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    sink.emit(obs::make_event("metric", {{"kind", obs::Value("counter")},
                                         {"name", obs::Value(name)},
                                         {"value", obs::Value(value)}}));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    sink.emit(obs::make_event("metric", {{"kind", obs::Value("gauge")},
                                         {"name", obs::Value(name)},
                                         {"value", obs::Value(value)}}));
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    sink.emit(obs::make_event(
        "metric", {{"kind", obs::Value("histogram")},
                   {"name", obs::Value(name)},
                   {"count", obs::Value(histogram.count)},
                   {"sum", obs::Value(histogram.sum)},
                   {"p50", obs::Value(histogram.quantile(0.50))},
                   {"p90", obs::Value(histogram.quantile(0.90))},
                   {"p99", obs::Value(histogram.quantile(0.99))}}));
  }
}

/// `campaign run|resume` and `campaign delta` share this body: a plain run
/// is a delta run against an empty baseline (every lookup misses), which
/// also means every CLI-written journal carries fingerprints and can serve
/// as a later delta's baseline.
int cmd_campaign_execute(const CampaignArgs& args, bool delta_mode) {
  const exp::ExperimentScale scale = pick_scale(args.scale_name);
  std::printf("%s\n", exp::describe(scale).c_str());
  const fi::CampaignConfig config = exp::make_campaign_config(scale);
  const std::vector<arr::TestCase> cases =
      scale.custom_cases.empty()
          ? arr::grid_test_cases(scale.mass_count, scale.velocity_count)
          : scale.custom_cases;
  const SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  store::ResultCache baseline;
  if (delta_mode) {
    if (args.baseline.empty()) {
      return usage_error("campaign delta needs --baseline <journal-dir>",
                         kCampaignUsage);
    }
    baseline = store::ResultCache::load(args.baseline);
    std::printf("baseline %s: %zu cached record(s), %zu without "
                "fingerprints\n",
                args.baseline.string().c_str(), baseline.record_count(),
                baseline.unfingerprinted());
  }

  fi::ModuleVersionMap versions = arr::module_version_tokens();
  if (!args.invalidate.empty()) {
    // Simulate "module M changed" by perturbing its version token: every
    // cached run whose target feeds M now misses. The code itself is
    // unchanged, so the re-executed runs reproduce the cached outcomes --
    // which is exactly what makes this a safe what-if flag.
    std::string names = args.invalidate;
    for (std::size_t start = 0; start < names.size();) {
      std::size_t comma = names.find(',', start);
      if (comma == std::string::npos) comma = names.size();
      const std::string name = names.substr(start, comma - start);
      bool found = false;
      for (fi::ModuleVersion& entry : versions) {
        if (entry.module == name) {
          entry.token ^= 0x5EED5EED5EED5EEDULL;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "propane: --invalidate: unknown module '%s'\n",
                     name.c_str());
        return 2;
      }
      start = comma + 1;
    }
  }

  // Telemetry is on by default and appends to <journal>/telemetry.ndjson,
  // so resumed sessions concatenate into one log and `campaign top` works
  // without extra flags. Observation-only: results are bit-identical with
  // --no-telemetry.
  obs::MetricsRegistry metrics;
  obs::SpanBuffer spans;
  std::optional<obs::NdjsonSink> sink;
  obs::Telemetry telemetry;
  if (!args.no_telemetry) {
    const std::filesystem::path events_path = telemetry_path(args);
    if (!events_path.parent_path().empty()) {
      std::filesystem::create_directories(events_path.parent_path());
    }
    sink.emplace(events_path, /*append=*/true);
    telemetry.metrics = &metrics;
    telemetry.events = &*sink;
    telemetry.spans = &spans;
  }
  obs::ProgressReporter::Options hud_options;
  hud_options.force = args.progress == 1;
  std::optional<obs::ProgressReporter> hud;
  if (args.progress != 0) hud.emplace(hud_options);

  store::DeltaRunOptions options;
  options.base.shard_count = args.shards;
  options.base.process_count = args.processes;
  options.base.process_index = args.index;
  options.base.telemetry = telemetry.enabled() ? &telemetry : nullptr;
  options.base.progress = hud.has_value() ? &*hud : nullptr;
  options.module_versions = versions;
  const store::DeltaJournalSummary summary =
      store::run_delta_journaled_campaign(
          arr::batched_campaign_runner(cases, config, scale.duration, nullptr,
                                       nullptr, options.base.telemetry),
          config, model, binding, args.journal, baseline, options);
  if (hud.has_value()) hud->finish();
  print_warnings(summary.warnings);
  if (!summary.invalidated_modules.empty()) {
    std::string names;
    for (core::ModuleId m : summary.invalidated_modules) {
      if (!names.empty()) names += ", ";
      names += model.module_name(m);
    }
    std::printf("invalidated module(s): %s\n", names.c_str());
  }
  std::printf(
      "journal %s: %zu run(s) executed, %zu replayed from baseline, "
      "%zu already journaled, %zu owned by other process(es), %zu planned\n",
      args.journal.string().c_str(), summary.executed, summary.replayed,
      summary.skipped_completed, summary.skipped_foreign, summary.total_runs);
  const double hit_rate =
      summary.executed > 0 ? 100.0 * static_cast<double>(summary.diverged) /
                                 static_cast<double>(summary.executed)
                           : 0.0;
  std::printf(
      "campaign summary: %.2fs wall, %zu executed, %zu replayed, "
      "%zu skipped, %zu diverged (%.1f%% of executed), journal +%llu bytes\n",
      summary.wall_seconds, summary.executed, summary.replayed,
      summary.skipped_completed + summary.skipped_foreign, summary.diverged,
      hit_rate, static_cast<unsigned long long>(summary.journal_bytes));
  if (args.explain) {
    TextTable table({"Module", "Replayed", "Executed", "Invalidated"});
    for (const store::ModuleDeltaExplain& row : summary.per_module) {
      table.add_row({row.module, std::to_string(row.replayed),
                     std::to_string(row.executed),
                     row.invalidated ? "yes" : ""});
    }
    std::puts(table.render().c_str());
  }
  if (sink.has_value()) {
    obs::publish_span_stats(&telemetry);
    emit_metric_events(*sink, metrics.snapshot());
    sink->flush();
    std::printf("telemetry: %zu event(s) appended to %s\n",
                sink->event_count(), telemetry_path(args).string().c_str());
  }
  return 0;
}

/// Path workers are spawned from: the running binary itself, resolved via
/// /proc/self/exe so a PATH-looked-up argv[0] still execs.
std::string executable_path(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string(argv0) : exe.string();
}

int cmd_campaign_serve(const CampaignArgs& args, const char* argv0) {
  const exp::ExperimentScale scale = pick_scale(args.scale_name);
  std::printf("%s\n", exp::describe(scale).c_str());
  const fi::CampaignConfig config = exp::make_campaign_config(scale);
  const SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  obs::MetricsRegistry metrics;
  obs::SpanBuffer spans;
  std::optional<obs::NdjsonSink> sink;
  obs::Telemetry telemetry;
  if (!args.no_telemetry) {
    const std::filesystem::path events_path = telemetry_path(args);
    if (!events_path.parent_path().empty()) {
      std::filesystem::create_directories(events_path.parent_path());
    }
    sink.emplace(events_path, /*append=*/true);
    telemetry.metrics = &metrics;
    telemetry.events = &*sink;
    telemetry.spans = &spans;
  }

  svc::ServeOptions options;
  options.worker_count = args.workers;
  options.lease_runs = args.lease_runs;
  // Workers re-derive the same config from the scale's canonical name (the
  // plan hash check in their resume scan catches any drift). Telemetry is
  // per-worker NDJSON files; sharing the dispatcher's would tear lines.
  options.worker_command = {executable_path(argv0),
                            "campaign",
                            "worker",
                            "--journal",
                            args.journal.string(),
                            "--scale",
                            scale.name,
                            "--shards",
                            std::to_string(args.shards)};
  if (args.no_telemetry) options.worker_command.push_back("--no-telemetry");
  options.telemetry = telemetry.enabled() ? &telemetry : nullptr;
  options.model = &model;
  options.binding = &binding;
  options.bus_signal_count = binding.bus_upper_bound();
  const svc::ServeSummary summary =
      svc::serve_campaign(config, args.journal, options);

  std::printf(
      "serve %s: %llu lease(s) granted, %llu completed, %llu requeued, "
      "%u worker(s) spawned (%u died), %llu executed, %llu diverged, "
      "%.2fs wall\n",
      args.journal.string().c_str(),
      static_cast<unsigned long long>(summary.leases_granted),
      static_cast<unsigned long long>(summary.leases_completed),
      static_cast<unsigned long long>(summary.leases_requeued),
      summary.workers_spawned, summary.workers_died,
      static_cast<unsigned long long>(summary.executed),
      static_cast<unsigned long long>(summary.diverged),
      summary.wall_seconds);
  if (summary.partial_estimates > 0) {
    std::printf("partial estimates: %llu emitted, final covers %llu of %zu "
                "run(s)\n",
                static_cast<unsigned long long>(summary.partial_estimates),
                static_cast<unsigned long long>(summary.estimated_runs),
                summary.total_runs);
  }
  std::printf("lease log: %s\n", summary.lease_log_path.string().c_str());
  if (sink.has_value()) {
    obs::publish_span_stats(&telemetry);
    emit_metric_events(*sink, metrics.snapshot());
    sink->flush();
    std::printf("telemetry: %zu event(s) appended to %s\n",
                sink->event_count(), telemetry_path(args).string().c_str());
  }
  if (summary.workers_died > 0 && !args.no_telemetry) {
    std::printf(
        "worker death(s) detected -- `propane campaign trace --journal %s "
        "--postmortem` recovers the dead workers' final events from their "
        "flight recorders\n",
        args.journal.string().c_str());
  }
  return 0;
}

/// `campaign worker`: stdout belongs to the wire protocol, so every human
/// readable line goes to stderr.
int cmd_campaign_worker(const CampaignArgs& args) {
  const exp::ExperimentScale scale = pick_scale(args.scale_name);
  const fi::CampaignConfig config = exp::make_campaign_config(scale);
  const std::vector<arr::TestCase> cases =
      scale.custom_cases.empty()
          ? arr::grid_test_cases(scale.mass_count, scale.velocity_count)
          : scale.custom_cases;

  obs::MetricsRegistry metrics;
  obs::SpanBuffer spans;
  std::optional<obs::NdjsonSink> sink;
  std::optional<obs::FlightRecorder> flight;
  std::optional<obs::FlightSink> flight_sink;
  std::optional<obs::TeeSink> tee;
  obs::Telemetry telemetry;
  if (!args.no_telemetry) {
    // One event log per worker: concurrent appends from several processes
    // into one NDJSON file could interleave mid-line, and `campaign top`
    // treats a malformed mid-file line as a hard error.
    const std::filesystem::path events_path =
        args.metrics_out.empty()
            ? args.journal / ("telemetry-w" + std::to_string(args.worker_id) +
                              ".ndjson")
            : std::filesystem::path(args.metrics_out);
    if (!events_path.parent_path().empty()) {
      std::filesystem::create_directories(events_path.parent_path());
    }
    sink.emplace(events_path, /*append=*/true);
    // Every event also lands in the mmap'd flight ring, which survives
    // SIGKILL where the buffered ofstream tail does not; `campaign trace
    // --postmortem` merges it back.
    std::filesystem::create_directories(args.journal);
    flight.emplace(args.journal /
                       ("flight-w" + std::to_string(args.worker_id) + ".bin"),
                   args.worker_id);
    flight_sink.emplace(*flight);
    tee.emplace(&*sink, &*flight_sink);
    // Disjoint span-id range per process: worker w draws from
    // (w+1) << 40, the dispatcher from 0, so ids never collide in the
    // merged trace.
    spans.set_id_base((static_cast<std::uint64_t>(args.worker_id) + 1)
                      << 40);
    telemetry.metrics = &metrics;
    telemetry.events = &*tee;
    telemetry.spans = &spans;
  }

  svc::WorkerConfig worker;
  worker.worker_id = args.worker_id;
  worker.journal_dir = args.journal;
  worker.journal.shard_count = args.shards;
  worker.journal.telemetry = telemetry.enabled() ? &telemetry : nullptr;

  svc::WorkerSummary summary;
  const int code = svc::run_worker_loop(
      arr::batched_campaign_runner(cases, config, scale.duration, nullptr,
                                   nullptr, worker.journal.telemetry),
      config, worker, std::cin, std::cout, &summary);
  if (sink.has_value()) {
    obs::publish_span_stats(&telemetry);
    emit_metric_events(*sink, metrics.snapshot());
    sink->flush();
  }
  if (flight.has_value() && code == 0) flight->mark_clean_exit();
  std::fprintf(stderr,
               "propane worker %u: %llu lease(s), %llu executed, "
               "%llu diverged, exit %d\n",
               args.worker_id, static_cast<unsigned long long>(summary.leases),
               static_cast<unsigned long long>(summary.executed),
               static_cast<unsigned long long>(summary.diverged), code);
  return code;
}

int cmd_campaign_merge(const CampaignArgs& args) {
  if (args.sources.empty()) {
    return usage_error("campaign merge needs source directories",
                       kCampaignUsage);
  }
  const store::MergeSummary summary =
      store::merge_journals(args.journal, args.sources);
  print_warnings(summary.warnings);
  std::printf("merged into %s: %zu unique record(s), %zu duplicate(s) dropped\n",
              args.journal.string().c_str(), summary.record_count,
              summary.duplicate_count);
  return 0;
}

int cmd_campaign_stats(const CampaignArgs& args) {
  const SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);
  store::JournalStats stats = [&] {
    if (args.csv_path.empty()) {
      return store::estimate_from_journal(args.journal, model, binding);
    }
    std::ofstream out(args.csv_path);
    if (!out) {
      std::fprintf(stderr, "propane: cannot write CSV '%s'\n",
                   args.csv_path.c_str());
      std::exit(1);
    }
    return store::write_permeability_csv_from_journal(out, args.journal,
                                                      model, binding);
  }();
  print_warnings(stats.warnings);
  std::printf("journal %s: plan 0x%016llx, seed 0x%016llx, %zu of %zu "
              "run(s) journaled (%zu replayed from a delta baseline), "
              "%zu duplicate(s)\n",
              args.journal.string().c_str(),
              static_cast<unsigned long long>(stats.manifest.plan_hash),
              static_cast<unsigned long long>(stats.manifest.seed),
              stats.record_count, stats.manifest.total_runs(),
              stats.replayed_count, stats.duplicate_count);
  std::puts("Estimated permeabilities (Table 1 style):");
  std::puts(exp::table1_permeability(model, stats.estimation).render().c_str());
  print_batch_occupancy_from_telemetry(args);
  if (!args.csv_path.empty()) {
    std::printf("permeability CSV written to %s\n", args.csv_path.c_str());
  }
  return 0;
}

// --- propane campaign bootstrap ------------------------------------------

/// Parses the --fractions ladder ("0.25,0.5,0.75"); exits with a usage
/// error on anything that is not a comma-separated list of numbers.
std::vector<double> parse_fractions(const std::string& text) {
  std::vector<double> fractions;
  for (std::size_t start = 0; start < text.size();) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = text.substr(start, comma - start);
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0' || !(value > 0.0) ||
        value > 1.0) {
      std::exit(usage_error("--fractions expects numbers in (0,1], got '" +
                                field + "'",
                            kCampaignUsage));
    }
    fractions.push_back(value);
    start = comma + 1;
  }
  return fractions;
}

/// `campaign bootstrap`: resamples the journal's records (no re-simulation)
/// into replicate permeability draws and propagates each through the whole
/// analysis pipeline; prints confidence tables and writes the summary.json
/// / bands.svg / confidence.dot artifact set.
int cmd_campaign_bootstrap(const CampaignArgs& args) {
  const SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  // Same telemetry arrangement as every other campaign subcommand: append
  // to <journal>/telemetry.ndjson unless told otherwise. Observation-only;
  // the artifacts are bit-identical with --no-telemetry.
  obs::MetricsRegistry metrics;
  obs::SpanBuffer spans;
  std::optional<obs::NdjsonSink> sink;
  obs::Telemetry telemetry;
  if (!args.no_telemetry) {
    const std::filesystem::path events_path = telemetry_path(args);
    if (!events_path.parent_path().empty()) {
      std::filesystem::create_directories(events_path.parent_path());
    }
    sink.emplace(events_path, /*append=*/true);
    telemetry.metrics = &metrics;
    telemetry.events = &*sink;
    telemetry.spans = &spans;
  }

  // Stream the journal once; the resampler's bus width comes from the
  // first record's report, as in store::estimate_from_journal.
  std::optional<fi::BootstrapResampler> resampler;
  const store::CampaignDirState state = store::for_each_journal_record(
      args.journal, [&](const fi::InjectionRecord& record, std::size_t) {
        if (!resampler.has_value()) {
          const std::size_t bus_count = std::max(
              binding.bus_upper_bound(), record.report.per_signal.size());
          resampler.emplace(model, binding, bus_count);
        }
        resampler->add(record);
      });
  print_warnings(state.warnings);
  if (!resampler.has_value() || resampler->record_count() == 0) {
    std::fprintf(stderr,
                 "propane: journal '%s' holds no injection records to "
                 "bootstrap\n",
                 args.journal.string().c_str());
    return 1;
  }
  std::printf("journal %s: plan 0x%016llx, seed 0x%016llx, %zu record(s) in "
              "%zu (signal, test case) cell(s)\n",
              args.journal.string().c_str(),
              static_cast<unsigned long long>(state.manifest.plan_hash),
              static_cast<unsigned long long>(state.manifest.seed),
              resampler->record_count(), resampler->cell_count());

  fi::BootstrapOptions options;
  options.replicates = args.replicates;
  options.seed = args.boot_seed;
  options.top_k = args.top_k;
  options.threads = args.threads;
  if (!args.fractions.empty()) {
    options.run_fractions = parse_fractions(args.fractions);
  }
  const fi::BootstrapResult result =
      resampler->run(options, telemetry.enabled() ? &telemetry : nullptr);

  std::printf("bootstrap: %zu replicate(s), seed %llu, top-k %zu, "
              "%zu convergence point(s)\n",
              result.replicates,
              static_cast<unsigned long long>(result.seed), result.top_k,
              result.convergence.size());

  std::puts("Module uncertainty (Eq. 5 exposure and rankings):");
  TextTable modules({"Module", "X~ (Eq.5)", "2.5%", "97.5%", "P(top1 EDM)",
                     "P~ (Eq.3)", "P(top1 ERM)"});
  for (const fi::ModuleCloud& m : result.modules) {
    modules.add_row(
        {m.name, format_double(m.nonweighted_exposure.point, 3),
         format_double(m.nonweighted_exposure.band.p2_5, 3),
         format_double(m.nonweighted_exposure.band.p97_5, 3),
         format_double(m.p_top1_exposure, 2),
         format_double(m.nonweighted_permeability.point, 3),
         format_double(m.p_top1_permeability, 2)});
  }
  std::puts(modules.render().c_str());

  std::puts("Propagation-path ranking stability (Table 4 with bands):");
  TextTable paths({"#", "Propagation path", "Weight", "2.5%", "97.5%",
                   "P(top1)", "P(topk)"});
  paths.set_align(1, Align::kLeft);
  std::size_t rank = 0;
  for (const fi::PathCloud& p : result.paths) {
    if (p.weight.point <= 0.0) continue;
    ++rank;
    if (rank > 10) break;
    paths.add_row({std::to_string(rank), p.description,
                   format_double(p.weight.point, 3),
                   format_double(p.weight.band.p2_5, 3),
                   format_double(p.weight.band.p97_5, 3),
                   format_double(p.p_top1, 2), format_double(p.p_topk, 2)});
  }
  std::puts(paths.render().c_str());

  std::puts("Convergence (\"how many runs is enough?\"):");
  TextTable conv({"Fraction", "Draws/replicate", "EDM pick", "P(top-1)"});
  for (const fi::ConvergencePoint& cp : result.convergence) {
    // The module most often ranked first at this campaign size.
    std::size_t best = 0;
    for (std::size_t m = 1; m < cp.module_p_top1.size(); ++m) {
      if (cp.module_p_top1[m] > cp.module_p_top1[best]) best = m;
    }
    conv.add_row({format_double(cp.fraction, 2), std::to_string(cp.draws),
                  result.module_names[best],
                  format_double(cp.module_p_top1[best], 2)});
  }
  std::puts(conv.render().c_str());

  std::printf("placement confidence: EDM %s P(top-1)=%s, ERM %s "
              "P(top-1)=%s\n",
              result.edm_module.c_str(),
              format_double(result.edm_p_top1, 2).c_str(),
              result.erm_module.c_str(),
              format_double(result.erm_p_top1, 2).c_str());

  const std::filesystem::path out_dir = args.trace_out.empty()
                                            ? args.journal / "bootstrap"
                                            : std::filesystem::path(
                                                  args.trace_out);
  const exp::BootstrapArtifactPaths artifacts =
      exp::write_bootstrap_artifacts(out_dir, model, result);
  std::printf("bootstrap artifacts: %s, %s, %s\n",
              artifacts.json.string().c_str(),
              artifacts.svg.string().c_str(),
              artifacts.dot.string().c_str());
  const double replicates_per_s =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.replicates *
                                result.convergence.size()) /
                result.wall_seconds
          : 0.0;
  std::printf("bootstrap summary: %.2fs wall, %.0f replicate(s)/s\n",
              result.wall_seconds, replicates_per_s);

  if (sink.has_value()) {
    obs::publish_span_stats(&telemetry);
    emit_metric_events(*sink, metrics.snapshot());
    sink->flush();
    std::printf("telemetry: %zu event(s) appended to %s\n",
                sink->event_count(), telemetry_path(args).string().c_str());
  }
  return 0;
}

// --- propane campaign top ------------------------------------------------

const obs::Value* find_field(const std::vector<obs::Field>& fields,
                             std::string_view key) {
  for (const obs::Field& field : fields) {
    if (field.key == key) return &field.value;
  }
  return nullptr;
}

std::string render_value(const obs::Value& value) {
  char buffer[64];
  switch (value.kind()) {
    case obs::Value::Kind::kNull:
      return "null";
    case obs::Value::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case obs::Value::Kind::kInt:
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(value.as_int()));
      return buffer;
    case obs::Value::Kind::kUint:
      std::snprintf(buffer, sizeof(buffer), "%llu",
                    static_cast<unsigned long long>(value.as_uint()));
      return buffer;
    case obs::Value::Kind::kDouble:
      std::snprintf(buffer, sizeof(buffer), "%g", value.as_double());
      return buffer;
    case obs::Value::Kind::kString:
      return value.as_string();
  }
  return "?";
}

/// The telemetry streams of a journal, label -> path: the
/// dispatcher/single-process log first, then every worker's
/// telemetry-w<id>.ndjson in id order. --metrics-out narrows the set to
/// that one file.
std::vector<std::pair<std::string, std::filesystem::path>> telemetry_streams(
    const CampaignArgs& args) {
  std::vector<std::pair<std::string, std::filesystem::path>> streams;
  if (!args.metrics_out.empty()) {
    streams.emplace_back("dispatcher", std::filesystem::path(args.metrics_out));
    return streams;
  }
  const std::filesystem::path main_path = args.journal / "telemetry.ndjson";
  if (std::filesystem::exists(main_path)) {
    streams.emplace_back("dispatcher", main_path);
  }
  std::map<unsigned long, std::filesystem::path> workers;
  std::error_code ec;
  for (std::filesystem::directory_iterator
           it(args.journal, ec),
       end;
       !ec && it != end; ++it) {
    const std::string name = it->path().filename().string();
    constexpr std::string_view kPrefix = "telemetry-w";
    constexpr std::string_view kSuffix = ".ndjson";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string id_text = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    char* tail = nullptr;
    const unsigned long id = std::strtoul(id_text.c_str(), &tail, 10);
    if (tail != nullptr && *tail == '\0' && !id_text.empty()) {
      workers[id] = it->path();
    }
  }
  for (const auto& [id, path] : workers) {
    streams.emplace_back("w" + std::to_string(id), path);
  }
  return streams;
}

/// Best-effort scan of the journal's telemetry stream(s) for final
/// batch.group.lanes histogram metrics (one per batched session per
/// stream; sessions and workers sum), feeding print_batch_occupancy.
/// Telemetry is an enrichment for `campaign stats`, so missing files and
/// malformed lines are silently skipped here -- `campaign top` is the
/// strict NDJSON validator.
void print_batch_occupancy_from_telemetry(const CampaignArgs& args) {
  std::uint64_t batches = 0;
  double lanes = 0.0;
  for (const auto& [label, path] : telemetry_streams(args)) {
    std::ifstream in(path);
    if (!in) continue;
    for (std::string line; std::getline(in, line);) {
      const auto fields = obs::parse_flat_json_object(line);
      if (!fields.has_value()) continue;
      const obs::Value* event = find_field(*fields, "event");
      if (event == nullptr || event->kind() != obs::Value::Kind::kString ||
          event->as_string() != "metric") {
        continue;
      }
      const obs::Value* name = find_field(*fields, "name");
      if (name == nullptr || name->kind() != obs::Value::Kind::kString ||
          name->as_string() != "batch.group.lanes") {
        continue;
      }
      const obs::Value* count = find_field(*fields, "count");
      const obs::Value* sum = find_field(*fields, "sum");
      if (count != nullptr && count->is_number() && sum != nullptr &&
          sum->is_number()) {
        batches += count->as_uint();
        lanes += sum->as_double();
      }
    }
  }
  print_batch_occupancy(batches, lanes);
}

/// Per-stream tallies for the `campaign top` breakdown table.
struct StreamTally {
  std::string label;
  std::size_t events = 0;
  std::size_t injections = 0;
  std::size_t diverged = 0;
  std::size_t torn = 0;
  double span_s = 0.0;
};

/// Summarises the campaign telemetry logs -- the dispatcher's plus every
/// worker's. Doubles as an NDJSON validity check: any malformed line other
/// than a torn final one (the residue of a live or killed writer) is a
/// hard error.
int cmd_campaign_top(const CampaignArgs& args) {
  const auto streams = telemetry_streams(args);
  if (streams.empty()) {
    std::fprintf(stderr,
                 "propane: no telemetry log at '%s' (campaign run writes it; "
                 "--metrics-out overrides the location)\n",
                 telemetry_path(args).string().c_str());
    return 1;
  }

  std::map<std::string, std::size_t> event_counts;
  std::size_t injections = 0, injections_diverged = 0;
  double injection_dur_sum_us = 0.0, injection_dur_max_us = 0.0;
  std::map<std::string, std::uint64_t> shard_bytes;  // shard -> last total
  std::vector<obs::Field> last_done;   // most recent campaign.done
  std::map<std::string, std::string> final_metrics;  // last metric events
  std::uint64_t batch_groups = 0;      // batch.group.lanes totals, summed
  double batch_lanes = 0.0;            // across sessions and workers
  std::size_t torn_lines = 0;
  std::vector<StreamTally> tallies;

  for (const auto& [label, path] : streams) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "propane: cannot open telemetry log '%s'\n",
                   path.string().c_str());
      return 1;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) {
      if (!line.empty()) lines.push_back(std::move(line));
    }

    StreamTally tally;
    tally.label = label;
    std::uint64_t t_first = 0, t_last = 0;
    bool any_time = false;

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto fields = obs::parse_flat_json_object(lines[i]);
      if (!fields.has_value()) {
        if (i + 1 == lines.size()) {
          // The writer died (or is still running) mid-line: expected
          // residue, same stance the journal reader takes on a torn tail
          // frame.
          ++torn_lines;
          ++tally.torn;
          break;
        }
        // A session killed mid-line leaves its residue where the next
        // session's first event (always journal.resume_scan) follows; that
        // is crash residue too, not corruption.
        const auto next = obs::parse_flat_json_object(lines[i + 1]);
        const obs::Value* next_event =
            next.has_value() ? find_field(*next, "event") : nullptr;
        if (next_event != nullptr &&
            next_event->kind() == obs::Value::Kind::kString &&
            next_event->as_string() == "journal.resume_scan") {
          ++torn_lines;
          ++tally.torn;
          continue;
        }
        std::fprintf(stderr,
                     "propane: malformed telemetry line %zu in %s: %s\n",
                     i + 1, path.string().c_str(), lines[i].c_str());
        return 1;
      }
      const obs::Value* name = find_field(*fields, "event");
      const obs::Value* t_us = find_field(*fields, "t_us");
      if (name == nullptr || name->kind() != obs::Value::Kind::kString) {
        std::fprintf(stderr,
                     "propane: telemetry line %zu in %s has no event name\n",
                     i + 1, path.string().c_str());
        return 1;
      }
      const std::string& event = name->as_string();
      ++event_counts[event];
      ++tally.events;
      if (t_us != nullptr && t_us->is_number()) {
        if (!any_time) {
          t_first = t_us->as_uint();
          any_time = true;
        }
        t_last = t_us->as_uint();
        t_first = std::min(t_first, t_us->as_uint());
      }
      if (event == "injection.done") {
        ++injections;
        ++tally.injections;
        if (const obs::Value* d = find_field(*fields, "diverged_signals");
            d != nullptr && d->is_number() && d->as_uint() > 0) {
          ++injections_diverged;
          ++tally.diverged;
        }
        if (const obs::Value* dur = find_field(*fields, "dur_us");
            dur != nullptr && dur->is_number()) {
          injection_dur_sum_us += dur->as_double();
          injection_dur_max_us = std::max(injection_dur_max_us,
                                          dur->as_double());
        }
      } else if (event == "journal.append") {
        const obs::Value* shard = find_field(*fields, "shard");
        const obs::Value* total = find_field(*fields, "total_bytes");
        if (shard != nullptr && shard->kind() == obs::Value::Kind::kString &&
            total != nullptr && total->is_number()) {
          shard_bytes[shard->as_string()] = total->as_uint();
        }
      } else if (event == "campaign.done" || event == "delta.done") {
        // delta.done carries replayed-vs-executed counts; whichever kind of
        // session ran last wins the "last session" line.
        last_done = *fields;
      } else if (event == "metric") {
        const obs::Value* metric = find_field(*fields, "name");
        if (metric != nullptr &&
            metric->kind() == obs::Value::Kind::kString) {
          const obs::Value* kind = find_field(*fields, "kind");
          if (kind != nullptr && kind->kind() == obs::Value::Kind::kString &&
              kind->as_string() == "histogram") {
            std::string cell;
            for (const char* key : {"count", "p50", "p90", "p99"}) {
              const obs::Value* v = find_field(*fields, key);
              if (v == nullptr) continue;
              if (!cell.empty()) cell += ", ";
              cell += std::string(key) + "=" + render_value(*v);
            }
            final_metrics[metric->as_string()] = cell;
            if (metric->as_string() == "batch.group.lanes") {
              const obs::Value* count = find_field(*fields, "count");
              const obs::Value* sum = find_field(*fields, "sum");
              if (count != nullptr && count->is_number() && sum != nullptr &&
                  sum->is_number()) {
                batch_groups += count->as_uint();
                batch_lanes += sum->as_double();
              }
            }
          } else if (const obs::Value* v = find_field(*fields, "value")) {
            final_metrics[metric->as_string()] = render_value(*v);
          }
        }
      }
    }
    tally.span_s = static_cast<double>(t_last - t_first) / 1e6;
    tallies.push_back(std::move(tally));
  }

  std::size_t total_events = 0;
  for (const auto& [_, count] : event_counts) total_events += count;
  double span_s = 0.0;
  for (const StreamTally& tally : tallies) {
    span_s = std::max(span_s, tally.span_s);
  }
  std::string torn_note;
  if (torn_lines > 0) {
    torn_note = " (" + std::to_string(torn_lines) + " torn line(s) skipped)";
  }
  std::printf("telemetry %s: %zu event(s) across %zu stream(s), %.2fs%s\n",
              args.journal.string().c_str(), total_events, streams.size(),
              span_s, torn_note.c_str());

  TextTable events_table({"Event", "Count"});
  for (const auto& [event, count] : event_counts) {
    events_table.add_row({event, std::to_string(count)});
  }
  std::puts(events_table.render().c_str());

  if (tallies.size() > 1) {
    TextTable streams_table(
        {"Stream", "Events", "Injections", "Diverged", "Span s"});
    for (const StreamTally& tally : tallies) {
      char span_cell[32];
      std::snprintf(span_cell, sizeof(span_cell), "%.2f", tally.span_s);
      streams_table.add_row({tally.label, std::to_string(tally.events),
                             std::to_string(tally.injections),
                             std::to_string(tally.diverged), span_cell});
    }
    std::puts(streams_table.render().c_str());
  }

  if (injections > 0) {
    std::printf(
        "injections: %zu done, %zu diverged (%.1f%%), "
        "mean %.1f ms, max %.1f ms\n",
        injections, injections_diverged,
        100.0 * static_cast<double>(injections_diverged) /
            static_cast<double>(injections),
        injection_dur_sum_us / static_cast<double>(injections) / 1e3,
        injection_dur_max_us / 1e3);
  }
  if (!shard_bytes.empty()) {
    std::uint64_t total = 0;
    for (const auto& [_, bytes] : shard_bytes) total += bytes;
    std::printf("journal: %llu bytes across %zu shard(s)\n",
                static_cast<unsigned long long>(total), shard_bytes.size());
  }
  print_batch_occupancy(batch_groups, batch_lanes);
  if (!last_done.empty()) {
    std::string line = "last session:";
    for (const obs::Field& field : last_done) {
      if (field.key == "event" || field.key == "t_us") continue;
      line += " " + field.key + "=" + render_value(field.value);
    }
    std::puts(line.c_str());
  }
  if (!final_metrics.empty()) {
    TextTable metrics_table({"Metric", "Value"});
    for (const auto& [metric, value] : final_metrics) {
      metrics_table.add_row({metric, value});
    }
    std::puts(metrics_table.render().c_str());
  }
  return 0;
}

// --- propane campaign trace ----------------------------------------------

/// Worker id out of a "w<id>" stream label (telemetry_streams invariant).
std::uint32_t stream_worker_id(const std::string& label) {
  return static_cast<std::uint32_t>(
      std::strtoul(label.c_str() + 1, nullptr, 10));
}

/// Merges the dispatcher's and every worker's telemetry into one
/// Chrome/Perfetto trace-event JSON. Worker clocks align via the HELLO
/// handshake offsets recorded in the dispatcher's serve.worker.hello
/// events; --postmortem folds in the tail events dead workers left in
/// their flight-recorder rings.
int cmd_campaign_trace(const CampaignArgs& args) {
  const auto stream_paths = telemetry_streams(args);
  if (stream_paths.empty()) {
    std::fprintf(stderr,
                 "propane: no telemetry log at '%s' -- `campaign trace` "
                 "needs the NDJSON streams a telemetry-enabled campaign "
                 "writes\n",
                 telemetry_path(args).string().c_str());
    return 1;
  }

  std::vector<obs::TraceStream> streams;
  // Raw lines per worker id, for deduplicating flight-recorder recoveries
  // (the ring holds events the NDJSON file usually also has).
  std::map<std::uint32_t, std::set<std::string>> worker_lines;
  std::map<std::uint32_t, std::size_t> worker_stream_index;
  std::size_t skipped_lines = 0;

  for (const auto& [label, path] : stream_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "propane: cannot open telemetry log '%s'\n",
                   path.string().c_str());
      return 1;
    }
    obs::TraceStream stream;
    stream.name = label;
    if (label == "dispatcher") {
      stream.pid = 1;  // refined from serve.done below
      skipped_lines += obs::parse_ndjson_stream(in, stream.events);
    } else {
      const std::uint32_t id = stream_worker_id(label);
      worker_stream_index[id] = streams.size();
      std::set<std::string>& seen = worker_lines[id];
      for (std::string line; std::getline(in, line);) {
        if (line.empty()) continue;
        auto fields = obs::parse_flat_json_object(line);
        if (!fields.has_value()) {
          ++skipped_lines;  // torn tail of a killed worker
          continue;
        }
        seen.insert(line);
        stream.events.push_back(std::move(*fields));
      }
    }
    streams.push_back(std::move(stream));
  }

  // The dispatcher stream anchors the merged timeline: its pid from
  // serve.done, worker pids from serve.worker.spawn, worker clock offsets
  // from the HELLO handshake.
  std::map<std::uint32_t, std::int64_t> worker_pids;
  std::map<std::uint32_t, std::int64_t> offsets;
  for (obs::TraceStream& stream : streams) {
    if (stream.name != "dispatcher") continue;
    for (const std::vector<obs::Field>& event : stream.events) {
      const obs::Value* name = find_field(event, "event");
      if (name == nullptr || name->kind() != obs::Value::Kind::kString) {
        continue;
      }
      const obs::Value* pid = find_field(event, "pid");
      if (name->as_string() == "serve.worker.spawn") {
        const obs::Value* id = find_field(event, "worker_id");
        if (id != nullptr && id->is_number() && pid != nullptr &&
            pid->is_number()) {
          worker_pids[static_cast<std::uint32_t>(id->as_uint())] =
              static_cast<std::int64_t>(pid->as_uint());
        }
      } else if (name->as_string() == "serve.done" && pid != nullptr &&
                 pid->is_number()) {
        stream.pid = static_cast<std::int64_t>(pid->as_uint());
      }
    }
    offsets = obs::hello_clock_offsets(stream);
  }
  for (const auto& [id, index] : worker_stream_index) {
    obs::TraceStream& stream = streams[index];
    if (const auto pid = worker_pids.find(id); pid != worker_pids.end()) {
      stream.pid = pid->second;
    } else {
      stream.pid = 1000 + static_cast<std::int64_t>(id);
    }
    if (const auto offset = offsets.find(id); offset != offsets.end()) {
      stream.clock_offset_us = offset->second;
    }
  }

  // Flight recorders: always surface crashed workers; --postmortem merges
  // their surviving ring lines (the NDJSON tail a buffered ofstream lost)
  // back into the worker's stream.
  std::size_t crashed = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(args.journal, ec), end;
       !ec && it != end; ++it) {
    const std::string name = it->path().filename().string();
    constexpr std::string_view kPrefix = "flight-w";
    constexpr std::string_view kSuffix = ".bin";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const auto recording = obs::read_flight_recording(it->path());
    if (!recording.has_value()) continue;
    const std::uint32_t id = recording->worker_id;
    if (!recording->clean_exit) ++crashed;
    if (!args.postmortem) continue;

    if (worker_stream_index.find(id) == worker_stream_index.end()) {
      obs::TraceStream stream;
      stream.name = "w" + std::to_string(id);
      stream.pid = static_cast<std::int64_t>(recording->pid);
      if (const auto offset = offsets.find(id); offset != offsets.end()) {
        stream.clock_offset_us = offset->second;
      }
      worker_stream_index[id] = streams.size();
      streams.push_back(std::move(stream));
    }
    obs::TraceStream& stream = streams[worker_stream_index[id]];
    const std::set<std::string>& seen = worker_lines[id];
    std::size_t recovered = 0;
    std::uint64_t last_t_us = 0;
    for (const std::string& line : recording->lines) {
      if (seen.find(line) != seen.end()) continue;
      auto fields = obs::parse_flat_json_object(line);
      if (!fields.has_value()) continue;  // reader already filtered; belt
      if (const obs::Value* t = find_field(*fields, "t_us");
          t != nullptr && t->is_number()) {
        last_t_us = std::max(last_t_us, t->as_uint());
      }
      stream.events.push_back(std::move(*fields));
      ++recovered;
    }
    if (recovered > 0) {
      stream.events.push_back(
          {{"event", obs::Value("flight.recovered")},
           {"t_us", obs::Value(last_t_us)},
           {"worker_id", obs::Value(id)},
           {"recovered", obs::Value(recovered)},
           {"last_seq", obs::Value(recording->last_seq)},
           {"clean_exit", obs::Value(recording->clean_exit)}});
    }
    std::printf(
        "postmortem w%u: pid %llu, %s, %zu ring event(s), %zu recovered "
        "(missing from the NDJSON stream)\n",
        id, static_cast<unsigned long long>(recording->pid),
        recording->clean_exit ? "clean exit" : "crashed (no clean-exit flag)",
        recording->lines.size(), recovered);
  }
  if (crashed > 0 && !args.postmortem) {
    std::printf(
        "%zu flight recorder(s) flag a crash; re-run with --postmortem to "
        "fold their final events into the trace\n",
        crashed);
  }

  const std::filesystem::path out_path =
      args.trace_out.empty() ? args.journal / "trace.json"
                             : std::filesystem::path(args.trace_out);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "propane: cannot write trace '%s'\n",
                 out_path.string().c_str());
    return 1;
  }
  const obs::TraceExportSummary summary =
      obs::write_chrome_trace(out, streams);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "propane: write failed for trace '%s'\n",
                 out_path.string().c_str());
    return 1;
  }
  std::string skipped_note;
  if (skipped_lines > 0) {
    skipped_note =
        " (" + std::to_string(skipped_lines) + " torn line(s) skipped)";
  }
  std::printf(
      "trace %s: %zu event(s) from %zu stream(s) -- %zu span(s), "
      "%zu synthesized, %zu counter sample(s), %zu instant(s)%s\n",
      out_path.string().c_str(), summary.trace_events, streams.size(),
      summary.spans, summary.synthesized, summary.counter_samples,
      summary.instants, skipped_note.c_str());
  std::printf("open in ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  CampaignArgs args;
  if (!parse_campaign_args(argc, argv, args)) return 2;
  if (args.sub == "run" || args.sub == "resume") {
    return cmd_campaign_execute(args, /*delta_mode=*/false);
  }
  if (args.sub == "delta") return cmd_campaign_execute(args, /*delta_mode=*/true);
  if (args.sub == "serve") return cmd_campaign_serve(args, argv[0]);
  if (args.sub == "worker") return cmd_campaign_worker(args);
  if (args.sub == "merge") return cmd_campaign_merge(args);
  if (args.sub == "stats") return cmd_campaign_stats(args);
  if (args.sub == "bootstrap") return cmd_campaign_bootstrap(args);
  if (args.sub == "top") return cmd_campaign_top(args);
  if (args.sub == "trace") return cmd_campaign_trace(args);
  return usage_error("unknown campaign subcommand '" + args.sub + "'",
                     kCampaignUsage);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h" || first == "help") {
      std::fputs(kUsageText.c_str(), stdout);  // asked-for help is not an error
      return 0;
    }
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "campaign") return cmd_campaign(argc, argv);
    const SystemModel model = load_model(argv[2]);
    if (command == "check") {
      std::printf("OK: %zu modules, %zu system inputs, %zu system outputs, "
                  "%zu I/O pairs\n",
                  model.module_count(), model.system_input_count(),
                  model.system_output_count(), model.io_pair_count());
      return 0;
    }
    const SystemPermeability permeability =
        load_permeability(model, argc >= 4 ? argv[3] : nullptr);
    const AnalysisReport report = analyze(model, permeability);
    if (command == "analyze") {
      cmd_analyze(model, report);
    } else if (command == "paths") {
      cmd_paths(model, report);
    } else if (command == "advise") {
      cmd_advise(model, report);
    } else if (command == "tree") {
      cmd_tree(model, report);
    } else if (command == "dot") {
      cmd_dot(model, report);
    } else if (command == "report") {
      ReportOptions report_options;
      report_options.title =
          std::string("Error propagation analysis: ") + argv[2];
      write_markdown_report(std::cout, model, report, report_options);
    } else if (command == "influence") {
      const InfluenceMatrix matrix(model, permeability);
      std::puts("Strongest-route influence, system inputs x outputs:");
      std::puts(matrix.boundary_table(model).render().c_str());
      std::puts("Full signal x signal matrix:");
      std::puts(matrix.full_table().render().c_str());
    } else {
      return usage();
    }
  } catch (const propane::TaskGroupError& err) {
    // Worker threads raised more than one exception; the campaign's result
    // is incomplete in a way a single error message cannot fully convey, so
    // this exits with a code distinct from ordinary failures.
    std::fprintf(stderr, "propane: %s\n", err.what());
    return 3;
  } catch (const propane::ContractViolation& err) {
    std::fprintf(stderr, "propane: %s\n", err.what());
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "propane: %s\n", err.what());
    return 1;
  }
  return 0;
}
