#!/usr/bin/env python3
"""Perf-regression guard over bench_campaign's BENCH_campaign.json.

Two layers of checking, matching what is deterministic where:

  1. Lane occupancy, exactly. The batch planner is deterministic: for a
     given scale it must pack the batched/sparse/delta lane sets into the
     minimum number of batches (ceil(lanes / width)), and the recorded
     lane_occupancy must equal lanes / (batches * width) to the digit.
     Any looseness here means the planner regressed to thinner packing
     (e.g. one batch per (test case, fire tick) group) -- that is a
     correctness bug in the plan, not machine noise, so it fails even
     though the journals would still be byte-identical.

  2. Throughput, within a generous factor of the committed reference.
     CI machines are slower and differently shaped than the reference
     box and the smoke scale amortises fixed costs worse than the
     default scale the committed JSON was recorded at, so the guard only
     catches order-of-magnitude regressions: measured runs/s of the
     batch and sparse-batch sections must be at least reference / TOL.
     Relative ratios (batch speedup_vs_warm, sparse
     speedup_vs_scalar_warm) are NOT asserted -- on 1-2 vCPU CI runners
     they swing far more than the absolute floor does.

Usage: check_bench_guard.py <measured.json> <reference.json> [tolerance]
"""

import json
import math
import sys

# Measured runs/s may be this many times below the committed reference
# before the guard fires. Generous by design: it spans the CI-machine
# slowdown AND the smoke-vs-default scale gap.
DEFAULT_TOLERANCE = 10.0


def fail(message: str) -> None:
    print(f"check_bench_guard: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")


def check_occupancy(label: str, section: dict) -> None:
    """The planner must have packed `label`'s lanes maximally."""
    for key in ("batches", "batched_lanes", "lane_width", "lane_occupancy"):
        if key not in section:
            fail(f"{label}: missing field '{key}'")
    batches = section["batches"]
    lanes = section["batched_lanes"]
    width = section["lane_width"]
    if batches <= 0 or lanes <= 0 or width <= 0:
        fail(f"{label}: degenerate section {section}")
    minimum = math.ceil(lanes / width)
    if batches != minimum:
        fail(
            f"{label}: {lanes} lane(s) packed into {batches} batch(es) of "
            f"width {width}; a maximal packing needs exactly {minimum} -- "
            f"the planner stopped packing across groups"
        )
    expected = lanes / (batches * width)
    if not math.isclose(section["lane_occupancy"], expected, rel_tol=1e-9):
        fail(
            f"{label}: recorded lane_occupancy {section['lane_occupancy']} "
            f"!= {lanes}/({batches}*{width}) = {expected}"
        )
    print(
        f"check_bench_guard: {label}: occupancy {expected:.4f} "
        f"({lanes} lane(s) / {batches} batch(es) x width {width}) -- maximal"
    )


def check_bootstrap(section: dict) -> None:
    """Schema-check the bootstrap resampling section when present.

    The resampler's replicates/s depends on the record count and the
    machine, so there is no reference comparison -- only shape and
    positivity. Absent sections are tolerated so the guard still accepts
    JSON recorded by older bench binaries.
    """
    for key in ("replicates", "records", "cells", "wall_s",
                "replicates_per_s"):
        if key not in section:
            fail(f"bootstrap: missing field '{key}'")
    if section["replicates"] <= 0 or section["records"] <= 0:
        fail(f"bootstrap: degenerate section {section}")
    rate = section["replicates_per_s"]
    if not isinstance(rate, (int, float)) or rate <= 0:
        fail(f"bootstrap: replicates_per_s missing or non-positive: {rate}")
    print(
        f"check_bench_guard: bootstrap: {section['replicates']} replicates "
        f"over {section['records']} record(s) at {rate:.0f} replicates/s"
    )


def check_throughput(label: str, measured: dict, reference: dict,
                     tolerance: float) -> None:
    got = measured.get("runs_per_s")
    want = reference.get("runs_per_s")
    if not isinstance(got, (int, float)) or got <= 0:
        fail(f"{label}: measured runs_per_s missing or non-positive: {got}")
    if not isinstance(want, (int, float)) or want <= 0:
        fail(f"{label}: reference runs_per_s missing or non-positive: {want}")
    floor = want / tolerance
    if got < floor:
        fail(
            f"{label}: measured {got:.0f} runs/s is below the regression "
            f"floor {floor:.0f} (reference {want:.0f} / tolerance "
            f"{tolerance:g})"
        )
    print(
        f"check_bench_guard: {label}: {got:.0f} runs/s >= floor "
        f"{floor:.0f} (reference {want:.0f})"
    )


def main() -> None:
    if len(sys.argv) not in (3, 4):
        fail("usage: check_bench_guard.py <measured.json> <reference.json> "
             "[tolerance]")
    measured = load(sys.argv[1])
    reference = load(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else DEFAULT_TOLERANCE
    if tolerance < 1.0:
        fail(f"tolerance must be >= 1, got {tolerance}")

    for key in ("batch", "sparse", "delta"):
        if key not in measured:
            fail(f"measured JSON has no '{key}' section")
        if key not in reference:
            fail(f"reference JSON has no '{key}' section")

    # Occupancy: exact, deterministic at any scale.
    check_occupancy("batch", measured["batch"])
    check_occupancy("sparse.batch", measured["sparse"]["batch"])
    check_occupancy("delta.batch", measured["delta"]["batch"])

    # Delta must actually have routed its invalidated runs through the
    # batch kernel (executed > 0 proves the kernel ran, replayed > 0
    # proves the baseline was consulted).
    delta = measured["delta"]
    if delta.get("executed", 0) <= 0 or delta.get("replayed", 0) <= 0:
        fail(f"delta section shows no executed+replayed split: {delta}")

    # Bootstrap resampling: schema only (no reference floor).
    if "bootstrap" in measured:
        check_bootstrap(measured["bootstrap"])

    # Throughput: generous lower bound against the committed reference.
    check_throughput("batch", measured["batch"], reference["batch"],
                     tolerance)
    check_throughput("sparse.batch", measured["sparse"]["batch"],
                     reference["sparse"]["batch"], tolerance)

    print("check_bench_guard: OK")


if __name__ == "__main__":
    main()
