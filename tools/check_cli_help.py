#!/usr/bin/env python3
"""CLI-help drift guard.

``tools/README.md`` embeds the output of ``propane --help`` in the fenced
code block following the ``<!-- cli-help -->`` marker. This script runs
the built binary and fails if the two have drifted, printing a unified
diff. CI runs it after the build; locally:

    python3 tools/check_cli_help.py build/tools/propane

Exit status: 0 in sync, 1 drift or missing marker/block, 2 usage error.
"""

from __future__ import annotations

import difflib
import subprocess
import sys
from pathlib import Path

MARKER = "<!-- cli-help -->"


def fenced_block_after_marker(readme: Path) -> str:
    lines = readme.read_text(encoding="utf-8").splitlines()
    try:
        start = next(i for i, line in enumerate(lines)
                     if line.strip() == MARKER)
    except StopIteration:
        raise SystemExit(f"{readme}: marker '{MARKER}' not found")
    try:
        fence_open = next(i for i in range(start + 1, len(lines))
                          if lines[i].startswith("```"))
        fence_close = next(i for i in range(fence_open + 1, len(lines))
                           if lines[i].startswith("```"))
    except StopIteration:
        raise SystemExit(f"{readme}: no fenced block after '{MARKER}'")
    return "\n".join(lines[fence_open + 1:fence_close]) + "\n"


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <path/to/propane>", file=sys.stderr)
        return 2
    binary = Path(argv[1])
    if not binary.exists():
        print(f"{binary}: no such binary (build first)", file=sys.stderr)
        return 2
    readme = Path(__file__).resolve().parent / "README.md"

    result = subprocess.run([str(binary), "--help"], capture_output=True,
                            text=True, check=False)
    if result.returncode != 0:
        print(f"{binary} --help exited {result.returncode}", file=sys.stderr)
        return 1

    documented = fenced_block_after_marker(readme)
    actual = result.stdout
    if documented == actual:
        print("tools/README.md usage block matches `propane --help`")
        return 0
    diff = difflib.unified_diff(
        documented.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile="tools/README.md (documented)",
        tofile="propane --help (actual)",
    )
    sys.stderr.writelines(diff)
    print("\ntools/README.md usage block has drifted from `propane --help`; "
          "update the fenced block after the <!-- cli-help --> marker.",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
