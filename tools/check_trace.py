#!/usr/bin/env python3
"""Validates a merged `propane campaign trace` Chrome trace-event JSON file.

Two layers of checking:

  1. Schema: the file is one JSON object with displayTimeUnit/traceEvents;
     every event carries ph/name/pid/tid, timestamps where its phase needs
     them, a duration on complete ("X") events, a numeric args.value on
     counter ("C") samples and a scope on instants ("i").

  2. Ancestry: every synthesized campaign.run span must reach a dispatcher
     serve.lease span by walking args.parent_span_id through the span map
     (campaign.run -> worker.lease -> serve.lease). This is the
     cross-process contract of the wire-propagated trace context -- if a
     worker span ever detaches from its dispatcher lease, the trace is
     still loadable but the campaign timeline is lies, so CI fails here.

Usage: check_trace.py <trace.json>
"""

import json
import sys

VALID_PHASES = {"X", "C", "i", "M"}


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {sys.argv[1]}: {error}")

    if trace.get("displayTimeUnit") != "ms":
        fail("missing displayTimeUnit")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = {}  # span_id -> (name, parent_span_id)
    runs = []
    counts = {phase: 0 for phase in VALID_PHASES}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            fail(f"{where}: unexpected phase {phase!r}")
        counts[phase] += 1
        for key in ("name", "pid", "tid"):
            if key not in event:
                fail(f"{where}: missing {key!r}")
        if phase != "M" and not isinstance(event.get("ts"), int):
            fail(f"{where}: non-integer ts")
        args = event.get("args", {})
        if phase == "X":
            if not isinstance(event.get("dur"), int):
                fail(f"{where}: X event without integer dur")
            span_id = args.get("span_id")
            if span_id:
                spans[span_id] = (event["name"], args.get("parent_span_id", 0))
            if event["name"] == "campaign.run":
                runs.append((where, args.get("parent_span_id", 0)))
        elif phase == "C":
            if not isinstance(args.get("value"), (int, float)):
                fail(f"{where}: counter without numeric args.value")
        elif phase == "i":
            if event.get("s") != "p":
                fail(f"{where}: instant without process scope")

    if not runs:
        fail("no campaign.run spans in the trace")
    if not any(name == "serve.lease" for name, _ in spans.values()):
        fail("no serve.lease spans in the trace")

    for where, parent in runs:
        chain = []
        while parent:
            if parent not in spans:
                fail(f"{where}: parent_span_id {parent} is not in the trace")
            name, parent = spans[parent]
            chain.append(name)
            if name == "serve.lease":
                break
            if len(chain) > 16:
                fail(f"{where}: ancestry loop through {chain}")
        if "serve.lease" not in chain:
            fail(f"{where}: campaign.run never reaches a serve.lease "
                 f"ancestor (chain: {chain or 'detached'})")

    print(
        f"check_trace: OK: {len(events)} events "
        f"({counts['X']} X, {counts['C']} C, {counts['i']} i, "
        f"{counts['M']} M); all {len(runs)} campaign.run spans reach a "
        f"serve.lease ancestor"
    )


if __name__ == "__main__":
    main()
