// File-driven workflow: describe the system in the text model format and
// keep permeability values in CSV, so the expensive fault-injection
// campaign runs once and the analysis can be repeated (or tweaked) from
// the artefacts alone.
//
// Usage:
//   file_driven_analysis                     # self-contained demo
//   file_driven_analysis model.txt perm.csv  # analyse your own files
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/propane.hpp"

namespace {

constexpr const char* kDemoModel = R"(
# The paper's target system (Fig. 8) in the propane++ model format.
module CLOCK  in ms_slot_nbr out mscnt ms_slot_nbr
module DIST_S in PACNT TIC1 TCNT out pulscnt slow_speed stopped
module PRES_S in ADC out InValue
module CALC   in i mscnt pulscnt slow_speed stopped out i SetValue
module V_REG  in SetValue InValue out OutValue
module PRES_A in OutValue out TOC2

input PACNT -> DIST_S.PACNT
input TIC1  -> DIST_S.TIC1
input TCNT  -> DIST_S.TCNT
input ADC   -> PRES_S.ADC

connect CLOCK.ms_slot_nbr -> CLOCK.ms_slot_nbr
connect CLOCK.mscnt       -> CALC.mscnt
connect DIST_S.pulscnt    -> CALC.pulscnt
connect DIST_S.slow_speed -> CALC.slow_speed
connect DIST_S.stopped    -> CALC.stopped
connect CALC.i            -> CALC.i
connect CALC.SetValue     -> V_REG.SetValue
connect PRES_S.InValue    -> V_REG.InValue
connect V_REG.OutValue    -> PRES_A.OutValue

output TOC2 <- PRES_A.TOC2
)";

// Representative permeability values (a reduced-campaign estimate).
constexpr const char* kDemoCsv = R"(module,input,output,permeability
CLOCK,ms_slot_nbr,ms_slot_nbr,1.0
DIST_S,PACNT,pulscnt,1.0
DIST_S,TIC1,slow_speed,0.146
CALC,i,i,0.974
CALC,i,SetValue,0.771
CALC,mscnt,SetValue,0.750
CALC,pulscnt,i,0.833
CALC,pulscnt,SetValue,0.807
V_REG,SetValue,OutValue,1.0
V_REG,InValue,OutValue,0.964
PRES_A,OutValue,TOC2,0.740
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace propane::core;

  SystemModel model = [&] {
    if (argc >= 2) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open model file %s\n", argv[1]);
        std::exit(1);
      }
      return parse_system_model(in);
    }
    std::puts("(no files given; analysing the built-in demo model)");
    return parse_system_model(kDemoModel);
  }();

  SystemPermeability permeability = [&] {
    if (argc >= 3) {
      std::ifstream in(argv[2]);
      if (!in) {
        std::fprintf(stderr, "cannot open permeability CSV %s\n", argv[2]);
        std::exit(1);
      }
      return load_permeability_csv(in, model);
    }
    std::istringstream in(kDemoCsv);
    return load_permeability_csv(in, model);
  }();

  const AnalysisReport report = analyze(model, permeability);
  std::puts("\nModule measures:");
  std::puts(module_measures_table(report).render().c_str());
  std::puts("Signal exposures:");
  std::puts(signal_exposure_table(report).render().c_str());
  std::puts("Top propagation paths:");
  std::puts(path_table(report, /*nonzero_only=*/true).render().c_str());
  std::puts("Placement advice:");
  std::puts(placement_table(report.placement).render().c_str());

  // Round-trip demonstration: both artefacts can be regenerated.
  std::ofstream model_out("/tmp/propane_model.txt");
  model_out << to_model_text(model);
  std::ofstream csv_out("/tmp/propane_permeability.csv");
  save_permeability_csv(csv_out, model, permeability);
  std::puts("wrote /tmp/propane_model.txt and "
            "/tmp/propane_permeability.csv (round-trippable)");
  return 0;
}
