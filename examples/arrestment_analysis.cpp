// The paper's full case study end-to-end (Sections 6-8): run the SWIFI
// campaign against the aircraft-arrestment controller, estimate the 25
// error permeabilities, derive every measure, and print the placement
// conclusions OB1-OB6.
//
// Scale via PROPANE_SCALE=full for the paper's 52,000-run campaign
// (25 test cases x 16 bit positions x 10 instants x 13 target signals).
#include <cstdio>
#include <fstream>

#include "core/ascii_tree.hpp"
#include "core/permeability_io.hpp"
#include "core/report_writer.hpp"
#include "exp/paper_experiment.hpp"
#include "fi/campaign_io.hpp"

int main() {
  using namespace propane;
  const auto scale = exp::scale_from_env();
  std::printf("Running the DSN'01 arrestment study -- %s\n\n",
              exp::describe(scale).c_str());
  const auto experiment = exp::run_paper_experiment(scale);

  std::puts("Table 1 -- estimated error permeabilities:");
  std::puts(exp::table1_permeability(experiment).render().c_str());

  std::puts("\nTable 2 -- module measures:");
  std::puts(core::module_measures_table(experiment.report).render().c_str());

  std::puts("Table 3 -- signal error exposures:");
  std::puts(core::signal_exposure_table(experiment.report).render().c_str());

  std::puts("Table 4 -- non-zero propagation paths from TOC2:");
  std::puts(core::path_table(experiment.report, true).render().c_str());

  std::puts("Backtrack tree of TOC2 (Fig. 10):");
  std::puts(core::render_ascii_tree(experiment.model,
                                    experiment.report.backtrack_trees[0])
                .c_str());

  std::puts("Placement advice (Section 5 rules of thumb + OB1-OB6):");
  std::puts(core::placement_table(experiment.report.placement)
                .render()
                .c_str());

  std::puts("Signals the analysis advises *against* instrumenting (OB4):");
  for (const auto& exclusion : experiment.report.placement.exclusions) {
    std::printf("  %-12s %s\n", exclusion.name.c_str(),
                exclusion.reason.c_str());
  }

  // Persist the artefacts: the estimated permeabilities (reloadable via
  // load_permeability_csv) and the raw campaign summary for external
  // post-processing.
  {
    std::ofstream perm("/tmp/arrestment_permeability.csv");
    core::save_permeability_csv(perm, experiment.model,
                                experiment.estimation.permeability);
    std::ofstream summary("/tmp/arrestment_campaign.csv");
    fi::write_campaign_summary_csv(summary, experiment.campaign);
    std::ofstream report_md("/tmp/arrestment_report.md");
    core::write_markdown_report(report_md, experiment.model,
                                experiment.report,
                                {.title = "DSN'01 arrestment analysis"});
    std::puts("\nwrote /tmp/arrestment_permeability.csv, "
              "/tmp/arrestment_campaign.csv and /tmp/arrestment_report.md");
  }
  return 0;
}
