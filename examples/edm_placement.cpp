// From analysis to mechanism: use the placement advice to instrument the
// arrestment controller with synthesized executable assertions (EDMs) and
// a recovery cell (ERM), then demonstrate both against a live injected
// error.
//
// This is the workflow Section 5 proposes: analyse -> rank locations ->
// install detection where exposure is high and recovery on the cut
// signals.
#include <cstdio>

#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "exp/paper_experiment.hpp"
#include "fi/assertion_synthesis.hpp"
#include "fi/golden.hpp"

int main() {
  using namespace propane;

  // 1. Analyse at smoke scale (fast); the advice is scale-robust.
  std::puts("[1/4] running the propagation analysis...");
  const auto experiment = exp::run_paper_experiment(exp::smoke_scale());
  const auto& advice = experiment.report.placement;
  std::puts("      top EDM signal candidates:");
  for (std::size_t i = 0; i < advice.edm_signals.size() && i < 3; ++i) {
    std::printf("        %zu. %s (exposure %.3f)\n", i + 1,
                advice.edm_signals[i].target_name.c_str(),
                advice.edm_signals[i].score);
  }

  // 2. Synthesize assertions for the advised signals from golden runs.
  std::puts("[2/4] synthesizing assertions from golden behaviour...");
  const arr::TestCase nominal{14000, 60};
  arr::RunOptions golden_options;
  const auto golden = arr::run_arrestment(nominal, golden_options);
  const std::vector<fi::TraceSet> goldens{golden.trace};
  const auto profiles = fi::profile_signals(goldens);

  fi::SignalBus reference;
  const arr::BusMap map = arr::build_bus(reference);
  fi::EdmMonitor monitor;
  fi::add_synthesized_edms(monitor, map.set_value, profiles[map.set_value]);
  fi::add_synthesized_edms(monitor, map.out_value, profiles[map.out_value]);
  fi::ErmHarness erms;
  fi::add_synthesized_erm(erms, map.set_value, profiles[map.set_value]);
  std::printf("      %zu EDM checks, %zu ERM cell(s) installed\n",
              monitor.size(), erms.size());

  // 3. Detection only: inject a stuck-at-high SetValue error.
  std::puts("[3/4] injecting a corrupt SetValue (detection only)...");
  arr::RunOptions faulty = golden_options;
  faulty.injection = fi::InjectionSpec{map.set_value, 2 * sim::kSecond,
                                       fi::set_value(65535)};
  faulty.monitor = &monitor;
  const auto detected_run = arr::run_arrestment(nominal, faulty);
  const auto unprotected_report =
      fi::compare_to_golden(golden.trace, detected_run.trace);
  std::printf("      system output corrupted: %s\n",
              unprotected_report.per_signal[map.toc2].diverged ? "YES"
                                                               : "no");
  if (monitor.detected()) {
    const auto& event = monitor.events().front();
    std::printf("      detected at t=%llu ms by %s on '%s' (value %u)\n",
                static_cast<unsigned long long>(event.ms),
                event.check.c_str(),
                detected_run.trace.signal_name(event.signal).c_str(),
                event.value);
  }

  // 4. Detection + recovery: the ERM holds the last good SetValue.
  std::puts("[4/4] same injection with the recovery cell armed...");
  arr::RunOptions protected_options = golden_options;
  protected_options.injection = faulty.injection;
  protected_options.erms = &erms;
  const auto recovered_run = arr::run_arrestment(nominal, protected_options);
  const auto protected_report =
      fi::compare_to_golden(golden.trace, recovered_run.trace);
  std::printf("      recovery actions taken: %zu\n", erms.events().size());
  std::printf("      system output corrupted: %s\n",
              protected_report.per_signal[map.toc2].diverged ? "YES" : "no");
  std::printf("      arrestment %s at %.1f m\n",
              recovered_run.arrested ? "succeeded" : "FAILED",
              recovered_run.stop_distance_m);
  return 0;
}
