// Extending the error-model library: define domain-specific error models
// (an EMI-style burst and an intermittent sensor dropout) and compare the
// permeability estimates they produce against plain bit flips on the same
// target signals.
//
// Section 6: "The type of injected errors can also affect the estimates.
// Ideally, one would inject errors from a realistic set" -- this example
// shows how to plug such a set in.
#include <cstdio>

#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "exp/paper_experiment.hpp"
#include "fi/error_model.hpp"

namespace {

using namespace propane;

/// EMI burst: flips a random contiguous 4-bit group.
fi::ErrorModel emi_burst() {
  return fi::ErrorModel{"emi-burst", [](std::uint16_t value, Rng& rng) {
                          const auto shift =
                              static_cast<unsigned>(rng.bounded(13));
                          return static_cast<std::uint16_t>(
                              value ^ (0xFu << shift));
                        }};
}

/// Sensor dropout: the register reads as all-zeros.
fi::ErrorModel sensor_dropout() { return fi::set_value(0); }

/// Saturated sensor: the register reads full scale.
fi::ErrorModel sensor_saturation() { return fi::set_value(0xFFFF); }

void report(const char* title, const exp::PaperExperiment& experiment) {
  std::printf("--- %s ---\n", title);
  std::printf("%-7s %-22s %8s\n", "Module", "pair", "P");
  for (const auto& pair : experiment.estimation.pairs) {
    if (pair.injections == 0 || pair.permeability() == 0.0) continue;
    std::printf("%-7s %-22s %8.3f\n",
                experiment.model.module_name(pair.pair.module).c_str(),
                (pair.input_name + " -> " + pair.output_name).c_str(),
                pair.permeability());
  }
  std::puts("");
}

}  // namespace

int main() {
  std::puts("Comparing error models on the arrestment controller\n");

  exp::ExperimentScale flips = exp::smoke_scale();
  flips.models = fi::all_bit_flips();
  flips.name = "bit flips";
  report("16 single bit flips (the paper's model)",
         exp::run_paper_experiment(flips));

  exp::ExperimentScale custom = exp::smoke_scale();
  custom.models = {emi_burst(), sensor_dropout(), sensor_saturation()};
  custom.name = "domain models";
  report("EMI burst + dropout + saturation (custom)",
         exp::run_paper_experiment(custom));

  std::puts("The relative ordering of the permeable pairs is what the "
            "framework relies on (Section 6); compare the two listings.");
  return 0;
}
