// Quickstart: model a small software system, assign error permeabilities,
// and run the full propagation analysis of Hiller/Jhumka/Suri (DSN 2001).
//
// The system here is a toy sensor-fusion pipeline:
//
//   [gyro]  -> FILTER -+-> FUSE -> CTRL -> [servo]
//   [accel] -> FILTER -+     ^
//   [cmd]   ------------------
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/propane.hpp"

int main() {
  using namespace propane::core;

  // 1. Describe the modular structure (Section 3 of the paper):
  //    modules with named ports, signals wiring them together.
  SystemModelBuilder builder;
  builder.add_module("FILTER", {"gyro_raw", "accel_raw"},
                     {"rate_est", "accel_est"});
  builder.add_module("FUSE", {"rate", "accel", "cmd"}, {"attitude"});
  builder.add_module("CTRL", {"attitude"}, {"servo_cmd"});

  builder.add_system_input("gyro");
  builder.add_system_input("accel");
  builder.add_system_input("cmd");
  builder.connect_system_input("gyro", "FILTER", "gyro_raw");
  builder.connect_system_input("accel", "FILTER", "accel_raw");
  builder.connect_system_input("cmd", "FUSE", "cmd");
  builder.connect("FILTER", "rate_est", "FUSE", "rate");
  builder.connect("FILTER", "accel_est", "FUSE", "accel");
  builder.connect("FUSE", "attitude", "CTRL", "attitude");
  builder.add_system_output("servo", "CTRL", "servo_cmd");
  const SystemModel model = std::move(builder).build();

  // 2. Provide error permeabilities P^M_{i,k} (Eq. 1) for each
  //    input/output pair -- from expert judgement, static analysis, or a
  //    fault-injection campaign (see the arrestment_analysis example for
  //    the experimental route).
  SystemPermeability permeability(model);
  permeability.set(model, "FILTER", "gyro_raw", "rate_est", 0.60);
  permeability.set(model, "FILTER", "accel_raw", "accel_est", 0.55);
  permeability.set(model, "FILTER", "gyro_raw", "accel_est", 0.05);
  permeability.set(model, "FUSE", "rate", "attitude", 0.80);
  permeability.set(model, "FUSE", "accel", "attitude", 0.70);
  permeability.set(model, "FUSE", "cmd", "attitude", 0.30);
  permeability.set(model, "CTRL", "attitude", "servo_cmd", 0.90);

  // 3. Run the whole Section 4-5 pipeline in one call.
  const AnalysisReport report = analyze(model, permeability);

  std::puts("Module measures (Eqs. 2-5):");
  std::puts(module_measures_table(report).render().c_str());

  std::puts("Signal error exposures (Eq. 6):");
  std::puts(signal_exposure_table(report).render().c_str());

  std::puts("Propagation paths to the servo output, ranked:");
  std::puts(path_table(report, /*nonzero_only=*/true).render().c_str());

  std::puts("Backtrack tree of the servo output:");
  std::puts(render_ascii_tree(model, report.backtrack_trees[0]).c_str());

  std::puts("Where to put detection and recovery mechanisms:");
  std::puts(placement_table(report.placement).render().c_str());

  std::puts("Tip: export DOT with core::to_dot(...) and render via "
            "`dot -Tpng`.");
  return 0;
}
