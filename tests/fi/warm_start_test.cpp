#include "arrestment/warm_start.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "arrestment/testcase.hpp"

namespace propane::arr {
namespace {

constexpr sim::SimTime kShortRun = 400 * sim::kMillisecond;

fi::BusSignalId bus_id(std::string_view name) {
  fi::SignalBus bus;
  build_bus(bus);
  const auto id = bus.find(name);
  EXPECT_TRUE(id.has_value());
  return *id;
}

fi::CampaignConfig short_config() {
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0xC0FFEE;
  const fi::BusSignalId pulscnt = bus_id("pulscnt");
  const fi::BusSignalId set_value = bus_id("SetValue");
  config.injections = {
      // Non-tick-aligned instant: fires in the *next* tick (ceil).
      fi::InjectionSpec{pulscnt, 100 * sim::kMillisecond + 500, fi::bit_flip(3)},
      fi::InjectionSpec{set_value, 250 * sim::kMillisecond, fi::bit_flip(9)},
      fi::InjectionSpec{pulscnt, 250 * sim::kMillisecond,
                        fi::random_replacement()},
  };
  return config;
}

::testing::AssertionResult traces_identical(const fi::TraceSet& a,
                                            const fi::TraceSet& b) {
  if (a.signal_count() != b.signal_count() ||
      a.sample_count() != b.sample_count()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  const std::size_t values = a.signal_count() * a.sample_count();
  if (values != 0 && std::memcmp(a.data(), b.data(),
                                 values * sizeof(std::uint16_t)) != 0) {
    return ::testing::AssertionFailure() << "values differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(WarmStart, FireTickRoundsUpToNextMillisecond) {
  EXPECT_EQ(injection_fire_ms(0), 0u);
  EXPECT_EQ(injection_fire_ms(1), 1u);
  EXPECT_EQ(injection_fire_ms(sim::kMillisecond), 1u);
  EXPECT_EQ(injection_fire_ms(sim::kMillisecond + 1), 2u);
  EXPECT_EQ(injection_fire_ms(2500 * sim::kMillisecond), 2500u);
}

TEST(WarmStart, WarmRunsBitIdenticalToCold) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  const fi::CampaignConfig config = short_config();
  const auto stats = std::make_shared<WarmStartStats>();
  const fi::RunFunction warm =
      warm_campaign_runner(cases, config, kShortRun, stats);
  const fi::RunFunction cold = campaign_runner(cases, kShortRun);

  // Goldens first (they capture the checkpoints), as run_campaign does.
  for (std::uint32_t tc = 0; tc < config.test_case_count; ++tc) {
    fi::RunRequest request;
    request.test_case = tc;
    request.rng_seed = 17 + tc;
    EXPECT_TRUE(traces_identical(warm(request), cold(request)));
  }
  for (std::size_t inj = 0; inj < config.injections.size(); ++inj) {
    for (std::uint32_t tc = 0; tc < config.test_case_count; ++tc) {
      fi::RunRequest request;
      request.test_case = tc;
      request.injection = config.injections[inj];
      request.rng_seed = 1000 * inj + tc;
      EXPECT_TRUE(traces_identical(warm(request), cold(request)))
          << "injection " << inj << " test case " << tc;
    }
  }
  // Every injection run resumed from a checkpoint; none fell back cold.
  EXPECT_EQ(stats->warm_runs.load(), 6u);
  EXPECT_EQ(stats->cold_runs.load(), 0u);
  EXPECT_GT(stats->saved_ms.load(), 0u);
}

TEST(WarmStart, InjectionBeforeGoldenFallsBackCold) {
  const std::vector<TestCase> cases = grid_test_cases(1, 1);
  fi::CampaignConfig config = short_config();
  config.test_case_count = 1;
  const auto stats = std::make_shared<WarmStartStats>();
  const fi::RunFunction warm =
      warm_campaign_runner(cases, config, kShortRun, stats);

  fi::RunRequest request;
  request.injection = config.injections[0];
  request.rng_seed = 5;
  const fi::TraceSet out = warm(request);  // no golden ran yet

  RunOptions options;
  options.duration = kShortRun;
  options.injection = config.injections[0];
  options.rng_seed = 5;
  EXPECT_TRUE(traces_identical(out, run_arrestment(cases[0], options).trace));
  EXPECT_EQ(stats->cold_runs.load(), 1u);
  EXPECT_EQ(stats->warm_runs.load(), 0u);
}

TEST(WarmStart, DisabledConfigUsesColdRunner) {
  const std::vector<TestCase> cases = grid_test_cases(1, 1);
  fi::CampaignConfig config = short_config();
  config.test_case_count = 1;
  config.warm_start = false;
  const auto stats = std::make_shared<WarmStartStats>();
  const fi::RunFunction runner =
      warm_campaign_runner(cases, config, kShortRun, stats);

  fi::RunRequest request;
  request.injection = config.injections[1];
  request.rng_seed = 3;
  RunOptions options;
  options.duration = kShortRun;
  options.injection = config.injections[1];
  options.rng_seed = 3;
  EXPECT_TRUE(traces_identical(runner(request),
                               run_arrestment(cases[0], options).trace));
  EXPECT_EQ(stats->warm_runs.load(), 0u);
  EXPECT_EQ(stats->cold_runs.load(), 0u);
}

TEST(WarmStart, FullCampaignMatchesColdRunnerExactly) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  const fi::CampaignConfig config = short_config();
  const fi::CampaignResult warm = fi::run_campaign(
      warm_campaign_runner(cases, config, kShortRun), config);
  const fi::CampaignResult cold =
      fi::run_campaign(campaign_runner(cases, kShortRun), config);

  ASSERT_EQ(warm.goldens.size(), cold.goldens.size());
  for (std::size_t tc = 0; tc < warm.goldens.size(); ++tc) {
    EXPECT_TRUE(traces_identical(warm.goldens[tc], cold.goldens[tc]));
  }
  ASSERT_EQ(warm.records.size(), cold.records.size());
  for (std::size_t r = 0; r < warm.records.size(); ++r) {
    const auto& a = warm.records[r].report.per_signal;
    const auto& b = cold.records[r].report.per_signal;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a[s].diverged, b[s].diverged);
      EXPECT_EQ(a[s].first_ms, b[s].first_ms);
      EXPECT_EQ(a[s].golden_value, b[s].golden_value);
      EXPECT_EQ(a[s].observed_value, b[s].observed_value);
    }
  }
}

TEST(ArrestmentSystem, SnapshotCopyResumesIdentically) {
  const TestCase test_case = grid_test_cases(1, 1)[0];
  RunOptions options;
  options.duration = 50 * sim::kMillisecond;
  options.rng_seed = 11;

  ArrestmentSystem reference(test_case);
  std::unique_ptr<ArrestmentSystem> copy;
  while (reference.now() < options.duration) {
    if (copy == nullptr && reference.current_ms() == 20) {
      copy = std::make_unique<ArrestmentSystem>(reference);
    }
    reference.tick(options);
  }
  ASSERT_NE(copy, nullptr);
  while (copy->now() < options.duration) copy->tick(options);

  EXPECT_EQ(copy->bus().snapshot(), reference.bus().snapshot());
  EXPECT_EQ(copy->environment().position_m(),
            reference.environment().position_m());
}

}  // namespace
}  // namespace propane::arr
