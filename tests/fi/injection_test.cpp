#include "fi/injection.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(InjectionDriver, FiresOnceAtTriggerTime) {
  SignalBus bus;
  const BusSignalId sig = bus.add_signal("s", 0b1010);
  InjectionDriver driver(bus, {sig, 5 * sim::kMillisecond, bit_flip(0)},
                         Rng(1));
  EXPECT_FALSE(driver.maybe_fire(4 * sim::kMillisecond));
  EXPECT_FALSE(driver.fired());
  EXPECT_EQ(bus.read(sig), 0b1010u);

  EXPECT_TRUE(driver.maybe_fire(5 * sim::kMillisecond));
  EXPECT_TRUE(driver.fired());
  EXPECT_EQ(bus.read(sig), 0b1011u);
  EXPECT_EQ(driver.value_before(), 0b1010u);
  EXPECT_EQ(driver.value_after(), 0b1011u);

  // Never fires twice, even if time keeps passing.
  EXPECT_FALSE(driver.maybe_fire(6 * sim::kMillisecond));
  bus.write(sig, 0);
  EXPECT_FALSE(driver.maybe_fire(7 * sim::kMillisecond));
  EXPECT_EQ(bus.read(sig), 0u);
}

TEST(InjectionDriver, FiresLateIfTriggerMissed) {
  SignalBus bus;
  const BusSignalId sig = bus.add_signal("s");
  InjectionDriver driver(bus, {sig, 10, bit_flip(3)}, Rng(1));
  EXPECT_TRUE(driver.maybe_fire(100));  // first call past the trigger
}

TEST(InjectionDriver, ContractsOnBadSpec) {
  SignalBus bus;
  bus.add_signal("s");
  EXPECT_THROW(InjectionDriver(bus, {5, 0, bit_flip(0)}, Rng(1)),
               ContractViolation);
  InjectionSpec null_model{0, 0, ErrorModel{"null", nullptr}};
  EXPECT_THROW(InjectionDriver(bus, null_model, Rng(1)), ContractViolation);
}

TEST(CrossProductPlan, EnumeratesModelsTimesInstants) {
  const auto plan = cross_product_plan(
      3, {bit_flip(0), bit_flip(1)},
      {1 * sim::kSecond, 2 * sim::kSecond, 3 * sim::kSecond});
  ASSERT_EQ(plan.size(), 6u);
  for (const InjectionSpec& spec : plan) {
    EXPECT_EQ(spec.target, 3u);
  }
  // Model-major order: first model over all instants first.
  EXPECT_EQ(plan[0].model.name, "bitflip(0)");
  EXPECT_EQ(plan[0].when, 1 * sim::kSecond);
  EXPECT_EQ(plan[2].when, 3 * sim::kSecond);
  EXPECT_EQ(plan[3].model.name, "bitflip(1)");
}

TEST(PaperInjectionInstants, TenHalfSecondSteps) {
  const auto instants = paper_injection_instants();
  ASSERT_EQ(instants.size(), 10u);
  EXPECT_EQ(instants.front(), sim::kSecond / 2);
  EXPECT_EQ(instants.back(), 5 * sim::kSecond);
  for (std::size_t i = 1; i < instants.size(); ++i) {
    EXPECT_EQ(instants[i] - instants[i - 1], sim::kSecond / 2);
  }
}

}  // namespace
}  // namespace propane::fi
