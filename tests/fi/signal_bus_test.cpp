#include "fi/signal_bus.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(SignalBus, RegisterReadWrite) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 7);
  const BusSignalId b = bus.add_signal("b");
  EXPECT_EQ(bus.signal_count(), 2u);
  EXPECT_EQ(bus.read(a), 7u);
  EXPECT_EQ(bus.read(b), 0u);
  bus.write(a, 42);
  EXPECT_EQ(bus.read(a), 42u);
}

TEST(SignalBus, NamesAndLookup) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("pulscnt");
  EXPECT_EQ(bus.name(a), "pulscnt");
  EXPECT_EQ(bus.find("pulscnt"), a);
  EXPECT_FALSE(bus.find("nope").has_value());
}

TEST(SignalBus, RejectsDuplicateOrEmptyNames) {
  SignalBus bus;
  bus.add_signal("x");
  EXPECT_THROW(bus.add_signal("x"), ContractViolation);
  EXPECT_THROW(bus.add_signal(""), ContractViolation);
}

TEST(SignalBus, PokeBypassesNothingButDocumentsIntent) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 1);
  bus.poke(a, 0xFFFF);
  EXPECT_EQ(bus.read(a), 0xFFFFu);
}

TEST(SignalBus, SnapshotMatchesIdOrder) {
  SignalBus bus;
  bus.add_signal("a", 1);
  bus.add_signal("b", 2);
  bus.add_signal("c", 3);
  const auto snap = bus.snapshot();
  EXPECT_EQ(snap, (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(SignalBus, FindScalesWithoutNameCopies) {
  // find() is index-backed: string_view lookups work on a large bus and
  // resolve to the right id for every signal, first and last included.
  SignalBus bus;
  std::vector<BusSignalId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(bus.add_signal("sig" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    const std::string name = "sig" + std::to_string(i);
    EXPECT_EQ(bus.find(std::string_view(name)), ids[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(bus.find("sig200").has_value());
}

TEST(SignalBus, SnapshotIntoFillsCallerBuffer) {
  SignalBus bus;
  bus.add_signal("a", 1);
  bus.add_signal("b", 2);
  std::vector<std::uint16_t> out(2, 0xFFFF);
  bus.snapshot_into(out);
  EXPECT_EQ(out, (std::vector<std::uint16_t>{1, 2}));
  std::vector<std::uint16_t> wrong(3);
  EXPECT_THROW(bus.snapshot_into(wrong), ContractViolation);
  std::vector<std::uint16_t> undersized(1);
  EXPECT_THROW(bus.snapshot_into(undersized), ContractViolation);
}

TEST(SignalBus, ResetRestoresInitialValues) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 11);
  const BusSignalId b = bus.add_signal("b", 22);
  bus.write(a, 1);
  bus.write(b, 2);
  bus.reset();
  EXPECT_EQ(bus.read(a), 11u);
  EXPECT_EQ(bus.read(b), 22u);
}

TEST(SignalBus, OutOfRangeAccessViolatesContracts) {
  SignalBus bus;
  bus.add_signal("a");
  EXPECT_THROW(bus.read(5), ContractViolation);
  EXPECT_THROW(bus.write(5, 0), ContractViolation);
  // poke carries its own bounds contract (not just via write): an
  // injection spec targeting a signal absent from this bus fails loudly
  // at the poke site.
  EXPECT_THROW(bus.poke(5, 0), ContractViolation);
  EXPECT_THROW(bus.name(5), ContractViolation);
}

}  // namespace
}  // namespace propane::fi
