#include "fi/trace.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(TraceSet, AppendAndAccess) {
  TraceSet trace({"a", "b"});
  EXPECT_EQ(trace.signal_count(), 2u);
  EXPECT_EQ(trace.sample_count(), 0u);
  trace.append({1, 2});
  trace.append({3, 4});
  EXPECT_EQ(trace.sample_count(), 2u);
  EXPECT_EQ(trace.value(0, 0), 1u);
  EXPECT_EQ(trace.value(1, 1), 4u);
  EXPECT_EQ(trace.signal_name(1), "b");
}

TEST(TraceSet, SeriesExtractsColumn) {
  TraceSet trace({"a", "b"});
  trace.append({1, 10});
  trace.append({2, 20});
  trace.append({3, 30});
  EXPECT_EQ(trace.series(1), (std::vector<std::uint16_t>{10, 20, 30}));
}

TEST(TraceSet, RowWidthMismatchViolatesContract) {
  TraceSet trace({"a", "b"});
  EXPECT_THROW(trace.append({1}), ContractViolation);
  EXPECT_THROW(trace.append({1, 2, 3}), ContractViolation);
}

TEST(TraceSet, OutOfRangeAccessViolatesContracts) {
  TraceSet trace({"a"});
  trace.append({1});
  EXPECT_THROW(trace.value(1, 0), ContractViolation);
  EXPECT_THROW(trace.value(0, 1), ContractViolation);
  EXPECT_THROW(trace.series(1), ContractViolation);
  EXPECT_THROW(trace.signal_name(1), ContractViolation);
}

TEST(TraceSet, FlatStorageMatchesPerRowSemantics) {
  // Property check for the flat row-major layout: after any sequence of
  // appends, row(ms), value(ms, id), data() and series(id) must all agree
  // with a per-row reference model.
  constexpr std::size_t kSignals = 7;
  constexpr std::size_t kSamples = 253;  // not a multiple of the width
  std::vector<std::string> names;
  for (std::size_t s = 0; s < kSignals; ++s) {
    names.push_back("sig" + std::to_string(s));
  }
  TraceSet trace(names);
  std::vector<std::vector<std::uint16_t>> reference;
  std::uint32_t state = 12345;
  for (std::size_t ms = 0; ms < kSamples; ++ms) {
    std::vector<std::uint16_t> row(kSignals);
    for (auto& v : row) {
      state = state * 1664525u + 1013904223u;  // LCG, deterministic
      v = static_cast<std::uint16_t>(state >> 16);
    }
    trace.append(row);
    reference.push_back(std::move(row));
  }

  ASSERT_EQ(trace.sample_count(), kSamples);
  ASSERT_EQ(trace.signal_count(), kSignals);
  const std::uint16_t* flat = trace.data();
  for (std::size_t ms = 0; ms < kSamples; ++ms) {
    const std::span<const std::uint16_t> row = trace.row(ms);
    ASSERT_EQ(row.size(), kSignals);
    for (std::size_t s = 0; s < kSignals; ++s) {
      EXPECT_EQ(row[s], reference[ms][s]);
      EXPECT_EQ(trace.value(ms, s), reference[ms][s]);
      EXPECT_EQ(flat[ms * kSignals + s], reference[ms][s]);
    }
  }
  for (std::size_t s = 0; s < kSignals; ++s) {
    const std::vector<std::uint16_t> column = trace.series(s);
    ASSERT_EQ(column.size(), kSamples);
    for (std::size_t ms = 0; ms < kSamples; ++ms) {
      EXPECT_EQ(column[ms], reference[ms][s]);
    }
  }
}

TEST(TraceSet, ReservePreventsReallocation) {
  TraceSet trace({"a", "b"});
  trace.reserve(100);
  trace.append({0, 0});
  const std::uint16_t* before = trace.data();
  for (std::uint16_t i = 1; i < 100; ++i) trace.append({i, i});
  EXPECT_EQ(trace.data(), before);  // storage never moved
  EXPECT_EQ(trace.sample_count(), 100u);
}

TEST(TraceSet, InternedNameTablesAreShared) {
  const SignalNameTable a = intern_signal_names({"x", "y"});
  const SignalNameTable b = intern_signal_names({"x", "y"});
  const SignalNameTable c = intern_signal_names({"x", "z"});
  EXPECT_EQ(a.get(), b.get());  // identical lists share one table
  EXPECT_NE(a.get(), c.get());
  TraceSet t1(a);
  TraceSet t2(b);
  EXPECT_EQ(t1.names().get(), t2.names().get());
}

TEST(TraceRecorder, SamplesBusStateOverTime) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a");
  const BusSignalId b = bus.add_signal("b", 100);
  TraceRecorder recorder(bus);
  recorder.sample();
  bus.write(a, 5);
  recorder.sample();
  bus.write(b, 7);
  recorder.sample();

  const TraceSet& trace = recorder.trace();
  EXPECT_EQ(trace.sample_count(), 3u);
  EXPECT_EQ(trace.series(a), (std::vector<std::uint16_t>{0, 5, 5}));
  EXPECT_EQ(trace.series(b), (std::vector<std::uint16_t>{100, 100, 7}));
  EXPECT_EQ(trace.signal_name(a), "a");
}

TEST(TraceRecorder, PrefixSeededRecorderContinuesTrace) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a");

  TraceSet prefix(std::vector<std::string>{"a"});
  prefix.append({10});
  prefix.append({11});

  bus.write(a, 12);
  TraceRecorder recorder(bus, prefix, /*reserve_samples=*/4);
  EXPECT_EQ(recorder.trace().sample_count(), 2u);
  recorder.sample();
  bus.write(a, 13);
  recorder.sample();
  EXPECT_EQ(recorder.take().series(a),
            (std::vector<std::uint16_t>{10, 11, 12, 13}));
}

TEST(TraceRecorder, PrefixWidthMismatchViolatesContract) {
  SignalBus bus;
  bus.add_signal("a");
  bus.add_signal("b");
  TraceSet narrow(std::vector<std::string>{"a"});
  EXPECT_THROW(TraceRecorder(bus, narrow, 0), ContractViolation);
}

TEST(TraceRecorder, TakeMovesTraceOut) {
  SignalBus bus;
  bus.add_signal("a");
  TraceRecorder recorder(bus);
  recorder.sample();
  TraceSet taken = recorder.take();
  EXPECT_EQ(taken.sample_count(), 1u);
}

}  // namespace
}  // namespace propane::fi
