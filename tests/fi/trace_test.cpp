#include "fi/trace.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(TraceSet, AppendAndAccess) {
  TraceSet trace({"a", "b"});
  EXPECT_EQ(trace.signal_count(), 2u);
  EXPECT_EQ(trace.sample_count(), 0u);
  trace.append({1, 2});
  trace.append({3, 4});
  EXPECT_EQ(trace.sample_count(), 2u);
  EXPECT_EQ(trace.value(0, 0), 1u);
  EXPECT_EQ(trace.value(1, 1), 4u);
  EXPECT_EQ(trace.signal_name(1), "b");
}

TEST(TraceSet, SeriesExtractsColumn) {
  TraceSet trace({"a", "b"});
  trace.append({1, 10});
  trace.append({2, 20});
  trace.append({3, 30});
  EXPECT_EQ(trace.series(1), (std::vector<std::uint16_t>{10, 20, 30}));
}

TEST(TraceSet, RowWidthMismatchViolatesContract) {
  TraceSet trace({"a", "b"});
  EXPECT_THROW(trace.append({1}), ContractViolation);
  EXPECT_THROW(trace.append({1, 2, 3}), ContractViolation);
}

TEST(TraceSet, OutOfRangeAccessViolatesContracts) {
  TraceSet trace({"a"});
  trace.append({1});
  EXPECT_THROW(trace.value(1, 0), ContractViolation);
  EXPECT_THROW(trace.value(0, 1), ContractViolation);
  EXPECT_THROW(trace.series(1), ContractViolation);
  EXPECT_THROW(trace.signal_name(1), ContractViolation);
}

TEST(TraceRecorder, SamplesBusStateOverTime) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a");
  const BusSignalId b = bus.add_signal("b", 100);
  TraceRecorder recorder(bus);
  recorder.sample();
  bus.write(a, 5);
  recorder.sample();
  bus.write(b, 7);
  recorder.sample();

  const TraceSet& trace = recorder.trace();
  EXPECT_EQ(trace.sample_count(), 3u);
  EXPECT_EQ(trace.series(a), (std::vector<std::uint16_t>{0, 5, 5}));
  EXPECT_EQ(trace.series(b), (std::vector<std::uint16_t>{100, 100, 7}));
  EXPECT_EQ(trace.signal_name(a), "a");
}

TEST(TraceRecorder, TakeMovesTraceOut) {
  SignalBus bus;
  bus.add_signal("a");
  TraceRecorder recorder(bus);
  recorder.sample();
  TraceSet taken = recorder.take();
  EXPECT_EQ(taken.sample_count(), 1u);
}

}  // namespace
}  // namespace propane::fi
