#include "fi/golden.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TraceSet make_trace(std::vector<std::vector<std::uint16_t>> rows,
                    std::vector<std::string> names = {"a", "b"}) {
  TraceSet trace(std::move(names));
  for (auto& row : rows) trace.append(std::move(row));
  return trace;
}

TEST(GoldenComparison, IdenticalTracesShowNoDivergence) {
  const TraceSet golden = make_trace({{1, 2}, {3, 4}});
  const TraceSet injected = make_trace({{1, 2}, {3, 4}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_FALSE(report.any_divergence());
  EXPECT_EQ(report.divergence_count(), 0u);
}

TEST(GoldenComparison, RecordsFirstDifferencePerSignal) {
  const TraceSet golden = make_trace({{1, 2}, {3, 4}, {5, 6}});
  const TraceSet injected = make_trace({{1, 2}, {9, 4}, {5, 7}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  ASSERT_EQ(report.per_signal.size(), 2u);
  EXPECT_TRUE(report.per_signal[0].diverged);
  EXPECT_EQ(report.per_signal[0].first_ms, 1u);
  EXPECT_EQ(report.per_signal[0].golden_value, 3u);
  EXPECT_EQ(report.per_signal[0].observed_value, 9u);
  EXPECT_TRUE(report.per_signal[1].diverged);
  EXPECT_EQ(report.per_signal[1].first_ms, 2u);
  EXPECT_EQ(report.divergence_count(), 2u);
}

TEST(GoldenComparison, ComparisonStopsAtFirstDifference) {
  // Values after the first difference are irrelevant -- only the first
  // difference is reported even if traces re-converge (Section 7.3).
  const TraceSet golden = make_trace({{1, 0}, {2, 0}, {3, 0}});
  const TraceSet injected = make_trace({{9, 0}, {2, 0}, {8, 0}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_EQ(report.per_signal[0].first_ms, 0u);
  EXPECT_FALSE(report.per_signal[1].diverged);
}

TEST(GoldenComparison, LengthMismatchCountsAsDivergence) {
  const TraceSet golden = make_trace({{1, 2}, {3, 4}, {5, 6}});
  const TraceSet shorter = make_trace({{1, 2}, {3, 4}});
  const DivergenceReport report = compare_to_golden(golden, shorter);
  EXPECT_TRUE(report.per_signal[0].diverged);
  EXPECT_EQ(report.per_signal[0].first_ms, 2u);
  EXPECT_TRUE(report.per_signal[1].diverged);
}

TEST(GoldenComparison, ValueDifferenceBeforeLengthMismatch) {
  const TraceSet golden = make_trace({{1, 2}, {3, 4}, {5, 6}});
  const TraceSet injected = make_trace({{1, 9}, {3, 4}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_EQ(report.per_signal[1].first_ms, 0u);  // value diff wins
  EXPECT_EQ(report.per_signal[0].first_ms, 2u);  // length diff
}

TEST(GoldenComparison, DivergenceOnFinalSampleOnly) {
  // The chunked scan must not treat the last row specially.
  const TraceSet golden = make_trace({{1, 2}, {3, 4}, {5, 6}});
  const TraceSet injected = make_trace({{1, 2}, {3, 4}, {5, 7}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_FALSE(report.per_signal[0].diverged);
  ASSERT_TRUE(report.per_signal[1].diverged);
  EXPECT_EQ(report.per_signal[1].first_ms, 2u);
  EXPECT_EQ(report.per_signal[1].golden_value, 6u);
  EXPECT_EQ(report.per_signal[1].observed_value, 7u);
}

TEST(GoldenComparison, LongerInjectedTraceCountsAsDivergence) {
  // Injected traces can also outlive the golden (e.g. a later stop): the
  // extra samples mark every still-converged signal at the common length.
  const TraceSet golden = make_trace({{1, 2}, {3, 4}});
  const TraceSet longer = make_trace({{1, 2}, {3, 4}, {5, 6}});
  const DivergenceReport report = compare_to_golden(golden, longer);
  EXPECT_TRUE(report.per_signal[0].diverged);
  EXPECT_EQ(report.per_signal[0].first_ms, 2u);
  EXPECT_EQ(report.per_signal[0].golden_value, 0u);
  EXPECT_EQ(report.per_signal[0].observed_value, 0u);
  EXPECT_TRUE(report.per_signal[1].diverged);
}

TEST(GoldenComparison, EmptyTracesShowNoDivergence) {
  const TraceSet golden = make_trace({});
  const TraceSet injected = make_trace({});
  const DivergenceReport report = compare_to_golden(golden, injected);
  ASSERT_EQ(report.per_signal.size(), 2u);
  EXPECT_FALSE(report.any_divergence());
}

TEST(GoldenComparison, EmptyGoldenVersusNonEmptyInjected) {
  const TraceSet golden = make_trace({});
  const TraceSet injected = make_trace({{1, 2}});
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_TRUE(report.per_signal[0].diverged);
  EXPECT_EQ(report.per_signal[0].first_ms, 0u);
  EXPECT_TRUE(report.per_signal[1].diverged);
}

TEST(GoldenComparison, FirstDifferenceAcrossChunkBoundaries) {
  // The contiguous scan compares in fixed-size chunks; place the first
  // (and only) difference deep into the flat buffer so it straddles the
  // internal chunking, and check the resolved (ms, signal) is exact.
  constexpr std::size_t kSamples = 10'000;  // 20'000 values > one chunk
  TraceSet golden({"a", "b"});
  TraceSet injected({"a", "b"});
  golden.reserve(kSamples);
  injected.reserve(kSamples);
  for (std::size_t ms = 0; ms < kSamples; ++ms) {
    const auto v = static_cast<std::uint16_t>(ms & 0xFFFF);
    golden.append({v, static_cast<std::uint16_t>(v ^ 0x5555)});
    const bool corrupt = ms >= 9'000;
    injected.append({v, static_cast<std::uint16_t>((v ^ 0x5555) ^
                                                   (corrupt ? 0x8000 : 0))});
  }
  const DivergenceReport report = compare_to_golden(golden, injected);
  EXPECT_FALSE(report.per_signal[0].diverged);
  ASSERT_TRUE(report.per_signal[1].diverged);
  EXPECT_EQ(report.per_signal[1].first_ms, 9'000u);
  EXPECT_EQ(report.per_signal[1].golden_value, golden.value(9'000, 1));
  EXPECT_EQ(report.per_signal[1].observed_value, injected.value(9'000, 1));
}

TEST(GoldenComparison, SignalCountMismatchViolatesContract) {
  const TraceSet golden = make_trace({{1, 2}});
  TraceSet other(std::vector<std::string>{"a"});
  other.append({1});
  EXPECT_THROW(compare_to_golden(golden, other), ContractViolation);
}

}  // namespace
}  // namespace propane::fi
