#include "fi/estimator.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

using core::SignalRef;
using core::SystemModel;
using core::SystemModelBuilder;

/// Model: system input "src" -> module M(in) -> output "dst" (system out).
SystemModel chain_model() {
  SystemModelBuilder builder;
  builder.add_module("M", {"in"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M", "in");
  builder.add_system_output("out", "M", "dst");
  return std::move(builder).build();
}

/// Model with feedback and two inputs:
///   system input "x" -> A -> "a" -> B{in_a, in_fb} -> "b" (system out),
///   "b" also feeds back into B.in_fb.
SystemModel feedback_model() {
  SystemModelBuilder builder;
  builder.add_module("A", {"xin"}, {"a"});
  builder.add_module("B", {"in_a", "in_fb"}, {"b"});
  builder.add_system_input("x");
  builder.connect_system_input("x", "A", "xin");
  builder.connect("A", "a", "B", "in_a");
  builder.connect("B", "b", "B", "in_fb");
  builder.add_system_output("out", "B", "b");
  return std::move(builder).build();
}

SignalBinding bind_names(const SystemModel& model,
                         std::vector<std::string> names) {
  return SignalBinding::by_name(model, names);
}

/// Builds a campaign result by hand: each entry is (target_bus, per-signal
/// divergence times; SIZE_MAX = no divergence).
CampaignResult fake_campaign(
    std::vector<std::string> signal_names,
    const std::vector<std::pair<BusSignalId,
                                std::vector<std::size_t>>>& records) {
  CampaignResult result;
  result.signal_names = std::move(signal_names);
  for (const auto& [target, times] : records) {
    InjectionRecord record;
    record.target = target;
    record.injection_index =
        static_cast<std::uint32_t>(result.records.size());
    result.injection_model_names.emplace_back("fake");
    record.report.per_signal.resize(times.size());
    for (std::size_t s = 0; s < times.size(); ++s) {
      if (times[s] != SIZE_MAX) {
        record.report.per_signal[s].diverged = true;
        record.report.per_signal[s].first_ms = times[s];
      }
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

TEST(SignalBinding, ByNameResolvesEverySignal) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  EXPECT_EQ(binding.size(), 2u);
  EXPECT_EQ(binding.bus_for(SignalRef::from_system_input(0)), 0u);
  EXPECT_EQ(binding.bus_for(SignalRef::from_output({0, 0})), 1u);
  EXPECT_TRUE(binding.is_bound(SignalRef::from_system_input(0)));
}

TEST(SignalBinding, MissingNameViolatesContract) {
  const SystemModel model = chain_model();
  EXPECT_THROW(bind_names(model, {"src", "WRONG"}), ContractViolation);
}

TEST(SignalBinding, UnboundLookupViolatesContract) {
  SignalBinding binding;
  EXPECT_THROW(binding.bus_for(SignalRef::from_system_input(0)),
               ContractViolation);
  EXPECT_FALSE(binding.is_bound(SignalRef::from_system_input(0)));
}

TEST(Estimator, PermeabilityIsErrorsOverInjections) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  // 4 injections into src: dst diverges in 3.
  const CampaignResult campaign = fake_campaign(
      {"src", "dst"}, {{0, {2, 5}},
                       {0, {2, SIZE_MAX}},
                       {0, {3, 4}},
                       {0, {3, 9}}});
  const EstimationResult est =
      estimate_permeability(model, binding, campaign);
  const PairEstimate& pair = est.pair(0, 0, 0);
  EXPECT_EQ(pair.injections, 4u);
  EXPECT_EQ(pair.errors, 3u);
  EXPECT_DOUBLE_EQ(pair.permeability(), 0.75);
  EXPECT_DOUBLE_EQ(est.permeability.get(0, 0, 0), 0.75);
  EXPECT_EQ(pair.input_name, "src");
  EXPECT_EQ(pair.output_name, "dst");
}

TEST(Estimator, UninjectedPairsStayZeroWithNoInjections) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  const CampaignResult campaign = fake_campaign({"src", "dst"}, {});
  const EstimationResult est =
      estimate_permeability(model, binding, campaign);
  EXPECT_EQ(est.pair(0, 0, 0).injections, 0u);
  EXPECT_DOUBLE_EQ(est.permeability.get(0, 0, 0), 0.0);
  // CI degenerates to [0, 1] when nothing was injected.
  EXPECT_DOUBLE_EQ(est.pair(0, 0, 0).confidence().lo, 0.0);
  EXPECT_DOUBLE_EQ(est.pair(0, 0, 0).confidence().hi, 1.0);
}

TEST(Estimator, DirectRuleExcludesEarlierOtherInputDivergence) {
  const SystemModel model = feedback_model();
  // Bus: x=0, a=1, b=2.
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  // Inject x. B's output b diverges at 7, but B's input in_a ("a")
  // diverged at 5 < 7: for pair (B, in_fb, b) this is irrelevant (in_fb is
  // driven by b itself -- self-feedback). For pair (B, in_a, b) the
  // injected signal is "a"? No: the injection target is x, whose consumer
  // is A.xin. So only A's pair (xin -> a) is estimated from this record.
  const CampaignResult c1 =
      fake_campaign({"x", "a", "b"}, {{0, {1, 5, 7}}});
  const EstimationResult e1 = estimate_permeability(model, binding, c1);
  EXPECT_EQ(e1.pair(0, 0, 0).injections, 1u);  // A: xin -> a
  EXPECT_EQ(e1.pair(0, 0, 0).errors, 1u);
  EXPECT_EQ(e1.pair(1, 0, 0).injections, 0u);  // B not injected

  // Inject a (B.in_a): b diverges at 7; the *other* input in_fb is driven
  // by b itself, which diverged at 7 too (cotimed self-feedback) -> still
  // direct.
  const CampaignResult c2 =
      fake_campaign({"x", "a", "b"}, {{1, {SIZE_MAX, 2, 7}}});
  const EstimationResult e2 = estimate_permeability(model, binding, c2);
  EXPECT_EQ(e2.pair(1, 0, 0).injections, 1u);
  EXPECT_EQ(e2.pair(1, 0, 0).errors, 1u);
  EXPECT_EQ(e2.pair(1, 0, 0).indirect_errors, 0u);
}

TEST(Estimator, DirectRuleSelfFeedbackEarlierDivergenceExcludes) {
  const SystemModel model = feedback_model();
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  // Inject a: b first diverges at 3 (recorded), but suppose the campaign
  // reports b's divergence at 3 and we look at... craft a case where the
  // feedback genuinely re-enters: b diverged at 3; a second divergence of
  // the *output* b cannot be later than its first. Instead check pair
  // (B, in_fb, b) when injecting b directly: the injected signal is b, the
  // other input in_a ("a") diverged at 5 while b diverged at 3 -> direct.
  const CampaignResult c =
      fake_campaign({"x", "a", "b"}, {{2, {SIZE_MAX, 5, 3}}});
  const EstimationResult est = estimate_permeability(model, binding, c);
  EXPECT_EQ(est.pair(1, 1, 0).injections, 1u);  // B: in_fb -> b
  EXPECT_EQ(est.pair(1, 1, 0).errors, 1u);

  // And if in_a had diverged *before* b (say at 1 < 3), the b divergence
  // is attributed to re-entry: indirect.
  const CampaignResult c_indirect =
      fake_campaign({"x", "a", "b"}, {{2, {SIZE_MAX, 1, 3}}});
  const EstimationResult est2 =
      estimate_permeability(model, binding, c_indirect);
  EXPECT_EQ(est2.pair(1, 1, 0).errors, 0u);
  EXPECT_EQ(est2.pair(1, 1, 0).indirect_errors, 1u);
}

TEST(Estimator, CotimedOtherProducerDivergenceIsIndirect) {
  const SystemModel model = feedback_model();
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  // Inject b (feedback input of B): other input in_a ("a", produced by A)
  // diverges at the same ms as output b -> indirect under the cotimed
  // rule for non-self-feedback inputs... but b first diverges at the
  // injection, which precedes. Use distinct times: output b diverges at 4,
  // in_a also at 4.
  const CampaignResult c =
      fake_campaign({"x", "a", "b"}, {{2, {SIZE_MAX, 4, 4}}});
  const EstimationResult est = estimate_permeability(model, binding, c);
  EXPECT_EQ(est.pair(1, 1, 0).errors, 0u);
  EXPECT_EQ(est.pair(1, 1, 0).indirect_errors, 1u);
}

TEST(Estimator, DirectOnlyFalseCountsEverything) {
  const SystemModel model = feedback_model();
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  const CampaignResult c =
      fake_campaign({"x", "a", "b"}, {{2, {SIZE_MAX, 1, 3}}});
  const EstimationResult est = estimate_permeability(
      model, binding, c, EstimationOptions{.direct_only = false});
  EXPECT_EQ(est.pair(1, 1, 0).errors, 1u);
  EXPECT_EQ(est.pair(1, 1, 0).indirect_errors, 1u);
}

TEST(Estimator, FanOutTargetCreditsEveryConsumer) {
  // One output feeding two modules: injections into it count for both.
  SystemModelBuilder builder;
  builder.add_module("SRC", {"s"}, {"sig"});
  builder.add_module("P", {"in"}, {"p"});
  builder.add_module("Q", {"in"}, {"q"});
  builder.add_system_input("x");
  builder.connect_system_input("x", "SRC", "s");
  builder.connect("SRC", "sig", "P", "in");
  builder.connect("SRC", "sig", "Q", "in");
  builder.add_system_output("op", "P", "p");
  builder.add_system_output("oq", "Q", "q");
  const SystemModel model = std::move(builder).build();
  const SignalBinding binding =
      SignalBinding::by_name(model, {"x", "sig", "p", "q"});
  // Inject sig(bus 1): p diverges, q does not.
  const CampaignResult c =
      fake_campaign({"x", "sig", "p", "q"}, {{1, {SIZE_MAX, 2, 4, SIZE_MAX}}});
  const EstimationResult est = estimate_permeability(model, binding, c);
  EXPECT_EQ(est.pair(1, 0, 0).injections, 1u);  // P
  EXPECT_EQ(est.pair(1, 0, 0).errors, 1u);
  EXPECT_EQ(est.pair(2, 0, 0).injections, 1u);  // Q
  EXPECT_EQ(est.pair(2, 0, 0).errors, 0u);
}

TEST(Estimator, LocationPropagationCountsSystemOutputReach) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  CampaignResult campaign = fake_campaign(
      {"src", "dst"},
      {{0, {2, 5}}, {0, {2, SIZE_MAX}}, {1, {SIZE_MAX, 3}}});
  campaign.injection_model_names = {"m1", "m1", "m2"};
  const auto stats = location_propagation_stats(model, binding, campaign);
  ASSERT_EQ(stats.size(), 2u);
  // (src, m1): 2 injections, 1 reached dst (the system output).
  const auto& src_m1 = stats[0].signal_name == "src" ? stats[0] : stats[1];
  EXPECT_EQ(src_m1.injections, 2u);
  EXPECT_EQ(src_m1.propagated, 1u);
  EXPECT_DOUBLE_EQ(src_m1.fraction(), 0.5);
}

TEST(Accumulator, StreamingFoldMatchesBatchInAnyOrder) {
  const SystemModel model = feedback_model();
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  const CampaignResult campaign = fake_campaign(
      {"x", "a", "b"}, {{0, {2, 5, 9}},
                        {0, {2, SIZE_MAX, SIZE_MAX}},
                        {1, {SIZE_MAX, 3, 3}},
                        {1, {SIZE_MAX, 4, SIZE_MAX}},
                        {2, {SIZE_MAX, SIZE_MAX, 6}}});
  const EstimationResult batch =
      estimate_permeability(model, binding, campaign);

  // Fold the same records one at a time, in reverse -- journal shards
  // replay in arbitrary order, and the estimate must not care.
  PermeabilityAccumulator accumulator(model, binding, 3);
  for (auto it = campaign.records.rbegin(); it != campaign.records.rend();
       ++it) {
    accumulator.add(*it);
  }
  EXPECT_EQ(accumulator.record_count(), campaign.records.size());
  const EstimationResult streamed = accumulator.finish();

  ASSERT_EQ(streamed.pairs.size(), batch.pairs.size());
  for (std::size_t p = 0; p < batch.pairs.size(); ++p) {
    EXPECT_EQ(streamed.pairs[p].injections, batch.pairs[p].injections);
    EXPECT_EQ(streamed.pairs[p].errors, batch.pairs[p].errors);
    EXPECT_DOUBLE_EQ(streamed.pairs[p].permeability(),
                     batch.pairs[p].permeability());
    EXPECT_EQ(streamed.pairs[p].latency_sum_ms, batch.pairs[p].latency_sum_ms);
  }
}

TEST(Accumulator, MergeOfShardedFoldsMatchesSingleFold) {
  const SystemModel model = feedback_model();
  const SignalBinding binding = bind_names(model, {"x", "a", "b"});
  const CampaignResult campaign = fake_campaign(
      {"x", "a", "b"}, {{0, {2, 5, 9}},
                        {0, {2, SIZE_MAX, SIZE_MAX}},
                        {1, {SIZE_MAX, 3, 3}},
                        {1, {SIZE_MAX, 4, SIZE_MAX}},
                        {2, {SIZE_MAX, SIZE_MAX, 6}}});

  PermeabilityAccumulator whole(model, binding, 3);
  for (const InjectionRecord& record : campaign.records) whole.add(record);

  // Split the records across per-worker accumulators and merge -- the
  // dispatcher's streaming-partial-estimate path.
  PermeabilityAccumulator shard_a(model, binding, 3);
  PermeabilityAccumulator shard_b(model, binding, 3);
  PermeabilityAccumulator shard_empty(model, binding, 3);
  for (std::size_t i = 0; i < campaign.records.size(); ++i) {
    (i % 2 == 0 ? shard_a : shard_b).add(campaign.records[i]);
  }
  PermeabilityAccumulator merged(model, binding, 3);
  merged.merge(shard_b);
  merged.merge(shard_empty);
  merged.merge(shard_a);

  EXPECT_EQ(merged.record_count(), whole.record_count());
  const EstimationResult lhs = merged.finish();
  const EstimationResult rhs = whole.finish();
  ASSERT_EQ(lhs.pairs.size(), rhs.pairs.size());
  for (std::size_t p = 0; p < rhs.pairs.size(); ++p) {
    EXPECT_EQ(lhs.pairs[p].injections, rhs.pairs[p].injections);
    EXPECT_EQ(lhs.pairs[p].errors, rhs.pairs[p].errors);
    EXPECT_EQ(lhs.pairs[p].indirect_errors, rhs.pairs[p].indirect_errors);
    EXPECT_EQ(lhs.pairs[p].latency_min_ms, rhs.pairs[p].latency_min_ms);
    EXPECT_EQ(lhs.pairs[p].latency_max_ms, rhs.pairs[p].latency_max_ms);
    EXPECT_EQ(lhs.pairs[p].latency_count, rhs.pairs[p].latency_count);
    EXPECT_DOUBLE_EQ(lhs.pairs[p].latency_sum_ms,
                     rhs.pairs[p].latency_sum_ms);
    EXPECT_DOUBLE_EQ(lhs.pairs[p].permeability(),
                     rhs.pairs[p].permeability());
  }
}

TEST(Accumulator, MergeAcrossLayoutsViolatesContract) {
  const SystemModel chain = chain_model();
  const SystemModel feedback = feedback_model();
  PermeabilityAccumulator lhs(chain, bind_names(chain, {"src", "dst"}), 2);
  PermeabilityAccumulator rhs(feedback, bind_names(feedback, {"x", "a", "b"}),
                              3);
  EXPECT_THROW(lhs.merge(rhs), ContractViolation);
}

TEST(Accumulator, SkippedRunPlaceholdersAreIgnored) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  PermeabilityAccumulator accumulator(model, binding, 2);
  InjectionRecord placeholder;  // empty per_signal = run never executed
  accumulator.add(placeholder);
  EXPECT_EQ(accumulator.record_count(), 0u);
  EXPECT_EQ(accumulator.finish().pair(0, 0, 0).injections, 0u);
}

TEST(Estimator, PairLookupContractOnUnknownPair) {
  const SystemModel model = chain_model();
  const SignalBinding binding = bind_names(model, {"src", "dst"});
  const CampaignResult campaign = fake_campaign({"src", "dst"}, {});
  const EstimationResult est =
      estimate_permeability(model, binding, campaign);
  EXPECT_THROW(est.pair(5, 0, 0), ContractViolation);
}

}  // namespace
}  // namespace propane::fi
