#include "fi/event_log.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(EventLog, RecordsInOrderWithLookup) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  log.record(10, "start");
  log.record(20, "checkpoint-1");
  log.record(20, "brake-engaged");
  log.record(90, "checkpoint-2");
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.first("checkpoint-1"), 20u);
  EXPECT_FALSE(log.first("nope").has_value());
  EXPECT_EQ(log.count("checkpoint-1"), 1u);
  EXPECT_EQ(log.count("nope"), 0u);
}

TEST(EventLog, RejectsOutOfOrderOrEmpty) {
  EventLog log;
  log.record(10, "a");
  EXPECT_THROW(log.record(5, "b"), ContractViolation);
  EXPECT_THROW(log.record(20, ""), ContractViolation);
}

TEST(CompareEventLogs, IdenticalSequences) {
  EventLog a;
  a.record(1, "x");
  a.record(2, "y");
  EventLog b;
  b.record(1, "x");
  b.record(2, "y");
  const auto divergence = compare_event_logs(a, b);
  EXPECT_FALSE(divergence.diverged());
  EXPECT_EQ(divergence.kind, EventDivergence::Kind::kNone);
}

TEST(CompareEventLogs, TimeMismatch) {
  EventLog golden;
  golden.record(1, "x");
  golden.record(100, "y");
  EventLog observed;
  observed.record(1, "x");
  observed.record(140, "y");  // same event, 40 ms late
  const auto divergence = compare_event_logs(golden, observed);
  EXPECT_EQ(divergence.kind, EventDivergence::Kind::kTimeMismatch);
  EXPECT_EQ(divergence.index, 1u);
}

TEST(CompareEventLogs, NameMismatchBeatsLaterDifferences) {
  EventLog golden;
  golden.record(1, "x");
  golden.record(2, "y");
  EventLog observed;
  observed.record(1, "z");
  observed.record(9, "y");
  const auto divergence = compare_event_logs(golden, observed);
  EXPECT_EQ(divergence.kind, EventDivergence::Kind::kNameMismatch);
  EXPECT_EQ(divergence.index, 0u);
}

TEST(CompareEventLogs, MissingAndExtra) {
  EventLog golden;
  golden.record(1, "x");
  golden.record(2, "y");
  EventLog shorter;
  shorter.record(1, "x");
  EXPECT_EQ(compare_event_logs(golden, shorter).kind,
            EventDivergence::Kind::kMissing);
  EventLog longer;
  longer.record(1, "x");
  longer.record(2, "y");
  longer.record(3, "z");
  const auto divergence = compare_event_logs(golden, longer);
  EXPECT_EQ(divergence.kind, EventDivergence::Kind::kExtra);
  EXPECT_EQ(divergence.index, 2u);
}

}  // namespace
}  // namespace propane::fi
