// Lockstep batched execution must be invisible in every result: lane
// traces, DivergenceReports, campaign records and journal CSVs from the
// SoA batch path must be bit-identical to the scalar per-run path for
// every batch size -- including when a batched campaign is killed
// mid-batch and resumed under a different batch size.
//
// Lives in tests/fi so the sanitizer CI jobs' tests/fi globs run the
// batched-vs-scalar equivalence under ASan/UBSan and TSan.
#include "arrestment/batch_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arrestment/batch_system.hpp"
#include "arrestment/model.hpp"
#include "arrestment/testcase.hpp"
#include "store/result_cache.hpp"
#include "store/resume.hpp"

namespace propane::arr {
namespace {

namespace fs = std::filesystem;

constexpr sim::SimTime kShortRun = 300 * sim::kMillisecond;
constexpr std::size_t kBatchSizes[] = {1, 4, 17, 64};

fi::BusSignalId bus_id(std::string_view name) {
  fi::SignalBus bus;
  build_bus(bus);
  const auto id = bus.find(name);
  EXPECT_TRUE(id.has_value()) << name;
  return *id;
}

/// Small-scale plan covering the planner's corner cases: several lanes per
/// (test case, fire tick) group, a fire time of zero (cold batch from
/// t=0), a non-tick-aligned fire time (ceil to the next tick), a
/// stochastic model (per-lane RNG streams) and an injection at the horizon
/// (never fires -> answered without simulation).
fi::CampaignConfig short_config() {
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0xBA7C4;
  const fi::BusSignalId pulscnt = bus_id("pulscnt");
  const fi::BusSignalId set_value = bus_id("SetValue");
  const fi::BusSignalId pacnt = bus_id("PACNT");
  config.injections = {
      fi::InjectionSpec{pulscnt, 50 * sim::kMillisecond, fi::bit_flip(3)},
      fi::InjectionSpec{set_value, 50 * sim::kMillisecond, fi::bit_flip(9)},
      fi::InjectionSpec{pacnt, 50 * sim::kMillisecond,
                        fi::random_replacement()},
      fi::InjectionSpec{pulscnt, 0, fi::bit_flip(0)},
      fi::InjectionSpec{pacnt, 150 * sim::kMillisecond + 500,
                        fi::bit_flip(7)},
      fi::InjectionSpec{set_value, kShortRun, fi::bit_flip(1)},  // never fires
  };
  return config;
}

::testing::AssertionResult traces_identical(const fi::TraceSet& a,
                                            const fi::TraceSet& b) {
  if (a.signal_count() != b.signal_count() ||
      a.sample_count() != b.sample_count()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.signal_count() << "x"
           << a.sample_count() << " vs " << b.signal_count() << "x"
           << b.sample_count();
  }
  const std::size_t values = a.signal_count() * a.sample_count();
  if (values != 0 && std::memcmp(a.data(), b.data(),
                                 values * sizeof(std::uint16_t)) != 0) {
    return ::testing::AssertionFailure() << "values differ";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult reports_identical(const fi::DivergenceReport& a,
                                             const fi::DivergenceReport& b) {
  if (a.per_signal.size() != b.per_signal.size()) {
    return ::testing::AssertionFailure() << "signal count mismatch";
  }
  for (std::size_t s = 0; s < a.per_signal.size(); ++s) {
    const fi::Divergence& x = a.per_signal[s];
    const fi::Divergence& y = b.per_signal[s];
    if (x.diverged != y.diverged || x.first_ms != y.first_ms ||
        x.golden_value != y.golden_value ||
        x.observed_value != y.observed_value) {
      return ::testing::AssertionFailure()
             << "signal " << s << ": (" << x.diverged << ", " << x.first_ms
             << ", " << x.golden_value << ", " << x.observed_value
             << ") vs (" << y.diverged << ", " << y.first_ms << ", "
             << y.golden_value << ", " << y.observed_value << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// --- Kernel-level trace identity -----------------------------------------

TEST(BatchKernel, ColdBatchRecordsBitIdenticalLaneTraces) {
  const TestCase test_case = grid_test_cases(1, 1)[0];
  const std::vector<fi::InjectionSpec> specs = {
      fi::InjectionSpec{bus_id("pulscnt"), 40 * sim::kMillisecond,
                        fi::bit_flip(3)},
      fi::InjectionSpec{bus_id("PACNT"), 40 * sim::kMillisecond,
                        fi::random_replacement()},
      fi::InjectionSpec{bus_id("SetValue"), 40 * sim::kMillisecond,
                        fi::bit_flip(12)},
  };
  std::vector<BatchLaneSpec> lanes;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    lanes.push_back(BatchLaneSpec{&specs[i], 900 + i});
  }

  const ArrestmentSystem origin(test_case);
  BatchedArrestmentSystem batch(origin, lanes, kShortRun);
  batch.enable_recording(nullptr);
  const std::vector<fi::DivergenceReport> reports = batch.run();
  ASSERT_EQ(reports.size(), specs.size());

  RunOptions golden_options;
  golden_options.duration = kShortRun;
  const RunOutcome golden = run_arrestment(test_case, golden_options);
  EXPECT_TRUE(traces_identical(batch.take_golden_trace(), golden.trace));

  for (std::size_t i = 0; i < specs.size(); ++i) {
    RunOptions options;
    options.duration = kShortRun;
    options.injection = specs[i];
    options.rng_seed = 900 + i;
    const RunOutcome scalar = run_arrestment(test_case, options);
    EXPECT_TRUE(traces_identical(batch.take_lane_trace(i), scalar.trace))
        << "lane " << i;
    EXPECT_TRUE(reports_identical(
        reports[i], fi::compare_to_golden(golden.trace, scalar.trace)))
        << "lane " << i;
  }
}

TEST(BatchKernel, WarmCheckpointBatchRecordsBitIdenticalLaneTraces) {
  const std::vector<TestCase> cases = grid_test_cases(1, 1);
  fi::CampaignConfig config = short_config();
  config.test_case_count = 1;
  WarmStartEngine engine(cases, config, kShortRun,
                         std::make_shared<WarmStartStats>());
  fi::RunRequest golden_request;  // captures the checkpoints
  const fi::TraceSet golden = engine.run(golden_request);

  const std::shared_ptr<const WarmStartEngine::Checkpoint> checkpoint =
      engine.lookup(0, 50);
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_EQ(checkpoint->ms, 50u);

  const std::vector<fi::InjectionSpec> specs = {
      fi::InjectionSpec{bus_id("pulscnt"), 50 * sim::kMillisecond,
                        fi::bit_flip(3)},
      fi::InjectionSpec{bus_id("PACNT"), 50 * sim::kMillisecond,
                        fi::random_replacement()},
  };
  std::vector<BatchLaneSpec> lanes;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    lanes.push_back(BatchLaneSpec{&specs[i], 40 + i});
  }
  BatchedArrestmentSystem batch(*checkpoint->system, lanes, kShortRun);
  batch.enable_recording(checkpoint->golden.get());
  batch.run();

  EXPECT_TRUE(traces_identical(batch.take_golden_trace(), golden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    RunOptions options;
    options.duration = kShortRun;
    options.injection = specs[i];
    options.rng_seed = 40 + i;
    EXPECT_TRUE(traces_identical(batch.take_lane_trace(i),
                                 run_arrestment(cases[0], options).trace))
        << "lane " << i;
  }
}

// --- Campaign-level record identity --------------------------------------

TEST(BatchCampaign, RecordsMatchScalarForEveryBatchSize) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = short_config();
  const fi::CampaignResult scalar =
      fi::run_campaign(campaign_runner(cases, kShortRun), config);

  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    config.batch_size = batch_size;
    const auto stats = std::make_shared<BatchRunStats>();
    const fi::CampaignResult batched = fi::run_campaign(
        batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
        config);

    // The batch path actually executed (never-firing lanes excepted).
    EXPECT_GT(stats->batches.load(), 0u);
    EXPECT_EQ(stats->batched_lanes.load() + stats->never_fire_lanes.load(),
              config.injections.size() * config.test_case_count);
    EXPECT_GT(stats->never_fire_lanes.load(), 0u);

    ASSERT_EQ(batched.goldens.size(), scalar.goldens.size());
    for (std::size_t tc = 0; tc < scalar.goldens.size(); ++tc) {
      EXPECT_TRUE(traces_identical(batched.goldens[tc], scalar.goldens[tc]));
    }
    ASSERT_EQ(batched.records.size(), scalar.records.size());
    for (std::size_t r = 0; r < scalar.records.size(); ++r) {
      SCOPED_TRACE("record " + std::to_string(r));
      EXPECT_EQ(batched.records[r].injection_index,
                scalar.records[r].injection_index);
      EXPECT_EQ(batched.records[r].test_case, scalar.records[r].test_case);
      EXPECT_EQ(batched.records[r].target, scalar.records[r].target);
      EXPECT_EQ(batched.records[r].when, scalar.records[r].when);
      EXPECT_TRUE(reports_identical(batched.records[r].report,
                                    scalar.records[r].report));
    }
  }
}

TEST(BatchCampaign, ColdBatchesMatchScalarWhenWarmStartDisabled) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = short_config();
  config.warm_start = false;
  config.batch_size = 4;
  const fi::CampaignResult scalar =
      fi::run_campaign(campaign_runner(cases, kShortRun), config);
  const auto stats = std::make_shared<BatchRunStats>();
  const fi::CampaignResult batched = fi::run_campaign(
      batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
      config);

  EXPECT_GT(stats->batches.load(), 0u);
  ASSERT_EQ(batched.records.size(), scalar.records.size());
  for (std::size_t r = 0; r < scalar.records.size(); ++r) {
    EXPECT_TRUE(reports_identical(batched.records[r].report,
                                  scalar.records[r].report))
        << "record " << r;
  }
}

// --- Journal / CSV identity ----------------------------------------------

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;  // run_journaled_campaign creates it
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = make_arrestment_model();
  const fi::SignalBinding binding = make_arrestment_binding(model);
  std::ostringstream out;
  store::write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

TEST(BatchJournal, CsvByteIdenticalToScalarForEveryBatchSize) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = short_config();

  const fs::path scalar_dir = fresh_dir("batch_csv_scalar");
  store::run_journaled_campaign(campaign_runner(cases, kShortRun), config,
                                scalar_dir);
  const std::string scalar_csv = journal_csv(scalar_dir);
  ASSERT_FALSE(scalar_csv.empty());

  for (const std::size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    config.batch_size = batch_size;
    const fs::path dir =
        fresh_dir("batch_csv_" + std::to_string(batch_size));
    store::run_journaled_campaign(
        batched_campaign_runner(cases, config, kShortRun), config, dir);
    EXPECT_EQ(journal_csv(dir), scalar_csv);
  }
}

TEST(BatchJournal, MidBatchKillAndResumeUnderDifferentBatchSize) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = short_config();
  config.threads = 1;  // deterministic: first batch lands, second crashes
  config.batch_size = 4;

  const fs::path scalar_dir = fresh_dir("batch_resume_scalar");
  store::run_journaled_campaign(campaign_runner(cases, kShortRun), config,
                                scalar_dir);
  const std::string scalar_csv = journal_csv(scalar_dir);

  // "Kill" mid-campaign: the first batch completes and journals its
  // records, every later batch throws. The exception unwinds like a crash
  // -- journaled records are durable, in-flight runs are lost.
  const fs::path dir = fresh_dir("batch_resume_killed");
  const fi::CampaignRunner inner =
      batched_campaign_runner(cases, config, kShortRun);
  std::atomic<std::size_t> batches{0};
  const fi::CampaignRunner crashing(
      inner.run, [&batches, &inner](const fi::BatchRunRequest& request) {
        if (batches.fetch_add(1) >= 1) {
          throw std::runtime_error("simulated crash");
        }
        return inner.batch(request);
      });
  EXPECT_THROW(store::run_journaled_campaign(crashing, config, dir),
               std::runtime_error);
  const store::CampaignDirState partial = store::scan_campaign_dir(dir);
  const std::size_t total =
      config.injections.size() * config.test_case_count;
  EXPECT_GT(partial.completed_count, 0u);
  EXPECT_LT(partial.completed_count, total);

  // Resume under a *different* batch size (the plan hash excludes it):
  // only the missing runs execute, regrouped into new batches.
  config.batch_size = 17;
  const store::JournalRunSummary resumed = store::run_journaled_campaign(
      batched_campaign_runner(cases, config, kShortRun), config, dir);
  EXPECT_EQ(resumed.executed + resumed.skipped_completed, total);
  EXPECT_EQ(resumed.skipped_completed, partial.completed_count);

  EXPECT_EQ(journal_csv(dir), scalar_csv);
}

// --- Packed cross-test-case batches --------------------------------------

/// Sparse plan: one bit, many instants. Each (test case, fire tick) group
/// holds exactly one lane, so saturating a batch *requires* packing lanes
/// across test cases and fire ticks; a never-fire lane rides along and
/// must be peeled out of the packed batch.
fi::CampaignConfig sparse_plan_config() {
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0x5BA12;
  const fi::BusSignalId pulscnt = bus_id("pulscnt");
  for (sim::SimTime i = 0; i < 12; ++i) {
    config.injections.push_back(fi::InjectionSpec{
        pulscnt, (20 + 20 * i) * sim::kMillisecond, fi::bit_flip(3)});
  }
  config.injections.push_back(
      fi::InjectionSpec{bus_id("SetValue"), kShortRun, fi::bit_flip(1)});
  return config;
}

TEST(BatchKernel, PackedCrossCaseStaggeredBatchRecordsBitIdenticalTraces) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  // Segment 0 (test case 0) carries two lanes, one firing after the batch
  // origin (staggered activation); segment 1 (test case 1) carries one.
  const std::vector<fi::InjectionSpec> specs = {
      fi::InjectionSpec{bus_id("pulscnt"), 40 * sim::kMillisecond,
                        fi::bit_flip(3)},
      fi::InjectionSpec{bus_id("PACNT"), 90 * sim::kMillisecond,
                        fi::random_replacement()},
      fi::InjectionSpec{bus_id("SetValue"), 40 * sim::kMillisecond,
                        fi::bit_flip(12)},
  };
  const std::vector<BatchLaneSpec> lanes0 = {BatchLaneSpec{&specs[0], 11},
                                             BatchLaneSpec{&specs[1], 12}};
  const std::vector<BatchLaneSpec> lanes1 = {BatchLaneSpec{&specs[2], 13}};
  const ArrestmentSystem origin0(cases[0]);
  const ArrestmentSystem origin1(cases[1]);
  const std::vector<BatchSegment> segments = {BatchSegment{&origin0, lanes0},
                                              BatchSegment{&origin1, lanes1}};
  BatchedArrestmentSystem batch(segments, kShortRun);
  const fi::TraceSet* prefixes[] = {nullptr, nullptr};
  batch.enable_recording(std::span<const fi::TraceSet* const>(prefixes, 2));
  const std::vector<fi::DivergenceReport> reports = batch.run();
  ASSERT_EQ(reports.size(), specs.size());

  RunOptions golden_options;
  golden_options.duration = kShortRun;
  for (std::size_t tc = 0; tc < cases.size(); ++tc) {
    EXPECT_TRUE(
        traces_identical(batch.take_golden_trace(tc),
                         run_arrestment(cases[tc], golden_options).trace))
        << "golden " << tc;
  }
  const std::uint32_t spec_case[] = {0, 0, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    RunOptions options;
    options.duration = kShortRun;
    options.injection = specs[i];
    options.rng_seed = 11 + i;
    const RunOutcome scalar = run_arrestment(cases[spec_case[i]], options);
    EXPECT_TRUE(traces_identical(batch.take_lane_trace(i), scalar.trace))
        << "lane " << i;
    EXPECT_TRUE(reports_identical(
        reports[i],
        fi::compare_to_golden(
            run_arrestment(cases[spec_case[i]], golden_options).trace,
            scalar.trace)))
        << "lane " << i;
  }
}

TEST(BatchKernel, ZeroLaneSegmentCoexistsWithPackedLanes) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  const std::vector<fi::InjectionSpec> specs = {
      fi::InjectionSpec{bus_id("pulscnt"), 40 * sim::kMillisecond,
                        fi::bit_flip(3)},
  };
  const std::vector<BatchLaneSpec> lanes1 = {BatchLaneSpec{&specs[0], 21}};
  const ArrestmentSystem origin0(cases[0]);
  const ArrestmentSystem origin1(cases[1]);
  // Segment 0 contributes only its golden lane (count == 0); the screen
  // and the convergence scan must skip it without touching its bit range.
  const std::vector<BatchSegment> segments = {
      BatchSegment{&origin0, std::span<const BatchLaneSpec>{}},
      BatchSegment{&origin1, lanes1}};
  BatchedArrestmentSystem batch(segments, kShortRun);
  const fi::TraceSet* prefixes[] = {nullptr, nullptr};
  batch.enable_recording(std::span<const fi::TraceSet* const>(prefixes, 2));
  const std::vector<fi::DivergenceReport> reports = batch.run();
  ASSERT_EQ(reports.size(), 1u);

  RunOptions golden_options;
  golden_options.duration = kShortRun;
  for (std::size_t tc = 0; tc < cases.size(); ++tc) {
    EXPECT_TRUE(
        traces_identical(batch.take_golden_trace(tc),
                         run_arrestment(cases[tc], golden_options).trace))
        << "golden " << tc;
  }
  RunOptions options;
  options.duration = kShortRun;
  options.injection = specs[0];
  options.rng_seed = 21;
  EXPECT_TRUE(traces_identical(batch.take_lane_trace(0),
                               run_arrestment(cases[1], options).trace));
}

TEST(BatchCampaign, SparsePlanPacksAcrossTestCasesAndFireTicks) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = sparse_plan_config();
  const fi::CampaignResult scalar =
      fi::run_campaign(campaign_runner(cases, kShortRun), config);

  config.batch_size = 32;
  const auto stats = std::make_shared<BatchRunStats>();
  const fi::CampaignResult batched = fi::run_campaign(
      batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
      config);

  // 24 single-lane (test case, fire tick) groups plus 2 never-fire lanes
  // pack into ONE kernel batch; the never-fire lanes are peeled before
  // simulation.
  EXPECT_EQ(stats->batches.load(), 1u);
  EXPECT_EQ(stats->batched_lanes.load(), 24u);
  EXPECT_EQ(stats->never_fire_lanes.load(), 2u);

  ASSERT_EQ(batched.records.size(), scalar.records.size());
  for (std::size_t r = 0; r < scalar.records.size(); ++r) {
    EXPECT_TRUE(reports_identical(batched.records[r].report,
                                  scalar.records[r].report))
        << "record " << r;
  }
}

TEST(BatchCampaign, NeverFirePlanAnswersWithoutSimulation) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0xF1FE;
  config.injections = {
      fi::InjectionSpec{bus_id("pulscnt"), kShortRun, fi::bit_flip(3)},
      fi::InjectionSpec{bus_id("SetValue"),
                        kShortRun + 5 * sim::kMillisecond, fi::bit_flip(1)},
  };
  const fi::CampaignResult scalar =
      fi::run_campaign(campaign_runner(cases, kShortRun), config);

  const auto stats = std::make_shared<BatchRunStats>();
  const fi::CampaignResult batched = fi::run_campaign(
      batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
      config);

  EXPECT_EQ(stats->batches.load(), 0u);
  EXPECT_EQ(stats->batched_lanes.load(), 0u);
  EXPECT_EQ(stats->never_fire_lanes.load(), 4u);
  ASSERT_EQ(batched.records.size(), scalar.records.size());
  for (std::size_t r = 0; r < scalar.records.size(); ++r) {
    EXPECT_TRUE(reports_identical(batched.records[r].report,
                                  scalar.records[r].report))
        << "record " << r;
  }
}

TEST(BatchJournal, SparsePackedPlanCsvByteIdenticalToScalar) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = sparse_plan_config();

  const fs::path scalar_dir = fresh_dir("batch_sparse_scalar");
  store::run_journaled_campaign(campaign_runner(cases, kShortRun), config,
                                scalar_dir);
  const std::string scalar_csv = journal_csv(scalar_dir);
  ASSERT_FALSE(scalar_csv.empty());

  for (const std::size_t batch_size : {std::size_t{5}, std::size_t{32}}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    config.batch_size = batch_size;
    const fs::path dir =
        fresh_dir("batch_sparse_" + std::to_string(batch_size));
    store::run_journaled_campaign(
        batched_campaign_runner(cases, config, kShortRun), config, dir);
    EXPECT_EQ(journal_csv(dir), scalar_csv);
  }
}

TEST(BatchJournal, ThreadedAutoShardedJournalCsvByteIdenticalToScalar) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = sparse_plan_config();

  const fs::path scalar_dir = fresh_dir("batch_mt_scalar");
  store::run_journaled_campaign(campaign_runner(cases, kShortRun), config,
                                scalar_dir);
  const std::string scalar_csv = journal_csv(scalar_dir);

  // Four worker threads, several batches each; shard_count 0 auto-scales
  // to one journal shard per worker, so appends run without contention.
  // CSVs are pure functions of journal *content*: any thread interleaving
  // and shard layout must merge to the same bytes.
  config.threads = 4;
  config.batch_size = 4;
  store::JournalRunOptions options;
  options.shard_count = 0;
  const fs::path dir = fresh_dir("batch_mt_sharded");
  const store::JournalRunSummary summary = store::run_journaled_campaign(
      batched_campaign_runner(cases, config, kShortRun), config, dir,
      options);
  EXPECT_EQ(summary.executed,
            config.injections.size() * config.test_case_count);
  EXPECT_EQ(journal_csv(dir), scalar_csv);
}

TEST(BatchJournal, ResumeOfCompleteJournalPlansNoBatches) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config = sparse_plan_config();
  config.batch_size = 8;

  const fs::path dir = fresh_dir("batch_resume_complete");
  store::run_journaled_campaign(
      batched_campaign_runner(cases, config, kShortRun), config, dir);
  const std::string csv = journal_csv(dir);

  // Every run is journaled: the planner sees zero missing lanes and the
  // batch path must cope with an entirely empty plan.
  const auto stats = std::make_shared<BatchRunStats>();
  const store::JournalRunSummary resumed = store::run_journaled_campaign(
      batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
      config, dir);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.skipped_completed,
            config.injections.size() * config.test_case_count);
  EXPECT_EQ(stats->batches.load(), 0u);
  EXPECT_EQ(journal_csv(dir), csv);
}

// --- Delta campaigns through the batch planner ---------------------------

TEST(BatchDelta, InvalidatedRunsExecuteThroughPackedBatches) {
  const std::vector<TestCase> cases = grid_test_cases(1, 2);
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0xDE17A;
  // Two target families: SetValue feeds V_REG directly (invalidated by a
  // V_REG version bump), pulscnt does not (replayed from the baseline).
  for (sim::SimTime i = 0; i < 6; ++i) {
    config.injections.push_back(fi::InjectionSpec{
        bus_id("pulscnt"), (20 + 20 * i) * sim::kMillisecond,
        fi::bit_flip(3)});
    config.injections.push_back(fi::InjectionSpec{
        bus_id("SetValue"), (30 + 20 * i) * sim::kMillisecond,
        fi::bit_flip(9)});
  }
  config.batch_size = 8;
  const core::SystemModel model = make_arrestment_model();
  const fi::SignalBinding binding = make_arrestment_binding(model);

  store::DeltaRunOptions options;
  options.module_versions = module_version_tokens();
  const fs::path base_dir = fresh_dir("batch_delta_base");
  store::run_delta_journaled_campaign(
      batched_campaign_runner(cases, config, kShortRun), config, model,
      binding, base_dir, store::ResultCache{}, options);
  const std::string cold_csv = journal_csv(base_dir);
  ASSERT_FALSE(cold_csv.empty());

  // Bump V_REG: its consumers' runs re-execute -- through the batch
  // planner, packed across test cases and fire ticks -- while the rest
  // replay from the baseline. The merged journal must be byte-identical.
  store::DeltaRunOptions changed;
  changed.module_versions =
      module_version_tokens({{"V_REG", 0x5EED5EED5EED5EEDULL}});
  const auto stats = std::make_shared<BatchRunStats>();
  const fs::path delta_dir = fresh_dir("batch_delta_out");
  const store::DeltaJournalSummary summary =
      store::run_delta_journaled_campaign(
          batched_campaign_runner(cases, config, kShortRun, nullptr, stats),
          config, model, binding, delta_dir,
          store::ResultCache::load(base_dir), changed);

  EXPECT_EQ(summary.executed, 12u);  // 6 SetValue instants x 2 test cases
  EXPECT_EQ(summary.replayed, 12u);
  // Packing proof: 12 single-lane (test case, fire tick) groups ran as
  // ceil(12 / 8) = 2 batches, not 12.
  EXPECT_EQ(stats->batches.load(), 2u);
  EXPECT_EQ(stats->batched_lanes.load(), 12u);
  EXPECT_EQ(journal_csv(delta_dir), cold_csv);
}

}  // namespace
}  // namespace propane::arr
