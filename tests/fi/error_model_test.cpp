#include "fi/error_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

Rng test_rng() { return Rng(1234); }

TEST(ErrorModel, BitFlipTogglesExactlyOneBit) {
  Rng rng = test_rng();
  for (unsigned bit = 0; bit < 16; ++bit) {
    const ErrorModel model = bit_flip(bit);
    const std::uint16_t flipped = model.apply(0, rng);
    EXPECT_EQ(flipped, 1u << bit);
    // Involution: flipping twice restores the value.
    EXPECT_EQ(model.apply(flipped, rng), 0u);
  }
}

TEST(ErrorModel, BitFlipRejectsBadBit) {
  EXPECT_THROW(bit_flip(16), ContractViolation);
  EXPECT_THROW(stuck_at_zero(16), ContractViolation);
  EXPECT_THROW(stuck_at_one(16), ContractViolation);
}

TEST(ErrorModel, StuckAtForcesBit) {
  Rng rng = test_rng();
  EXPECT_EQ(stuck_at_zero(3).apply(0xFFFF, rng), 0xFFF7u);
  EXPECT_EQ(stuck_at_zero(3).apply(0x0000, rng), 0x0000u);
  EXPECT_EQ(stuck_at_one(3).apply(0x0000, rng), 0x0008u);
  EXPECT_EQ(stuck_at_one(3).apply(0xFFFF, rng), 0xFFFFu);
}

TEST(ErrorModel, OffsetWrapsAround) {
  Rng rng = test_rng();
  EXPECT_EQ(offset(1).apply(0xFFFF, rng), 0u);
  EXPECT_EQ(offset(-1).apply(0, rng), 0xFFFFu);
  EXPECT_EQ(offset(100).apply(5, rng), 105u);
  EXPECT_EQ(offset(-10).apply(5, rng), 0xFFFBu);
}

TEST(ErrorModel, SetValueIgnoresOriginal) {
  Rng rng = test_rng();
  const ErrorModel model = set_value(777);
  EXPECT_EQ(model.apply(0, rng), 777u);
  EXPECT_EQ(model.apply(0xFFFF, rng), 777u);
}

TEST(ErrorModel, RandomReplacementIsSeedDeterministic) {
  Rng a(99);
  Rng b(99);
  const ErrorModel model = random_replacement();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.apply(0, a), model.apply(0, b));
  }
}

TEST(ErrorModel, RandomReplacementVaries) {
  Rng rng = test_rng();
  const ErrorModel model = random_replacement();
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(model.apply(0, rng));
  EXPECT_GT(seen.size(), 40u);
}

TEST(ErrorModel, FamiliesHaveExpectedSizesAndDistinctNames) {
  auto check = [](const std::vector<ErrorModel>& family,
                  std::size_t expected) {
    EXPECT_EQ(family.size(), expected);
    std::set<std::string> names;
    for (const ErrorModel& m : family) {
      EXPECT_TRUE(names.insert(m.name).second) << "duplicate: " << m.name;
      EXPECT_NE(m.apply, nullptr);
    }
  };
  check(all_bit_flips(), 16);
  check(all_stuck_at_zero(), 16);
  check(all_stuck_at_one(), 16);
  check(offset_family(), 16);
  check(random_family(16), 16);
}

TEST(ErrorModel, NamesIdentifyParameters) {
  EXPECT_EQ(bit_flip(7).name, "bitflip(7)");
  EXPECT_EQ(stuck_at_zero(2).name, "stuck0(2)");
  EXPECT_EQ(offset(-64).name, "offset(-64)");
  EXPECT_EQ(set_value(9).name, "set(9)");
}

TEST(ErrorModel, StuckAtChangesValueOnlyWhenBitDiffers) {
  // Property over all bits: stuck-at-v changes the word iff the bit was !v.
  Rng rng = test_rng();
  for (unsigned bit = 0; bit < 16; ++bit) {
    const std::uint16_t word = 0xA5C3;
    const bool bit_is_one = (word >> bit) & 1;
    EXPECT_EQ(stuck_at_one(bit).apply(word, rng) != word, !bit_is_one);
    EXPECT_EQ(stuck_at_zero(bit).apply(word, rng) != word, bit_is_one);
  }
}

}  // namespace
}  // namespace propane::fi
