#include "fi/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

/// A miniature deterministic system: signal "src" is freshly produced
/// every tick (so an injected error is visible for exactly one tick),
/// "dst" mirrors src with the low nibble masked off (so bit-flips in bits
/// 0-3 never propagate). Each test case uses a different src offset. The
/// injection point sits between producer and consumer, like a trap on the
/// consumer's read.
TraceSet toy_run(const RunRequest& request) {
  SignalBus bus;
  const BusSignalId src = bus.add_signal("src");
  const BusSignalId dst = bus.add_signal("dst");

  std::optional<InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    bus.write(src, static_cast<std::uint16_t>(request.test_case * 100 + ms));
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(dst, static_cast<std::uint16_t>(bus.read(src) & 0xFFF0));
    recorder.sample();
  }
  return recorder.take();
}

CampaignConfig toy_config() {
  CampaignConfig config;
  config.test_case_count = 3;
  config.injections = {
      InjectionSpec{0, 2 * sim::kMillisecond, bit_flip(0)},   // masked
      InjectionSpec{0, 2 * sim::kMillisecond, bit_flip(8)},   // propagates
      InjectionSpec{0, 50 * sim::kMillisecond, bit_flip(8)},  // never fires
  };
  config.threads = 2;
  return config;
}

TEST(Campaign, RunsGoldensAndAllInjections) {
  const CampaignResult result = run_campaign(toy_run, toy_config());
  EXPECT_EQ(result.goldens.size(), 3u);
  EXPECT_EQ(result.records.size(), 9u);
  EXPECT_EQ(result.run_count(), 12u);
  ASSERT_EQ(result.signal_names.size(), 2u);
  EXPECT_EQ(result.signal_names[0], "src");
  EXPECT_EQ(result.find_signal("dst"), 1u);
  EXPECT_FALSE(result.find_signal("nope").has_value());
}

TEST(Campaign, RecordsCarryInjectionIdentity) {
  const CampaignResult result = run_campaign(toy_run, toy_config());
  ASSERT_EQ(result.injection_model_names.size(), 3u);
  for (const InjectionRecord& record : result.records) {
    EXPECT_EQ(record.target, 0u);
    EXPECT_LT(record.injection_index, 3u);
    EXPECT_LT(record.test_case, 3u);
    const std::string_view model = result.model_name_of(record);
    EXPECT_TRUE(model == "bitflip(0)" || model == "bitflip(8)");
  }
  // Injection-major layout: record[inj * cases + tc].
  EXPECT_EQ(result.records[0].injection_index, 0u);
  EXPECT_EQ(result.records[0].test_case, 0u);
  EXPECT_EQ(result.records[4].injection_index, 1u);
  EXPECT_EQ(result.records[4].test_case, 1u);
}

TEST(Campaign, MaskedBitNeverReachesDst) {
  const CampaignResult result = run_campaign(toy_run, toy_config());
  for (const InjectionRecord& record : result.records) {
    if (result.model_name_of(record) != "bitflip(0)") continue;
    EXPECT_TRUE(record.report.per_signal[0].diverged);   // src corrupted
    EXPECT_EQ(record.report.per_signal[0].first_ms, 2u);
    EXPECT_FALSE(record.report.per_signal[1].diverged);  // dst masked
  }
}

TEST(Campaign, HighBitPropagatesImmediately) {
  const CampaignResult result = run_campaign(toy_run, toy_config());
  for (const InjectionRecord& record : result.records) {
    if (record.injection_index != 1) continue;
    EXPECT_TRUE(record.report.per_signal[0].diverged);
    EXPECT_TRUE(record.report.per_signal[1].diverged);
    EXPECT_EQ(record.report.per_signal[1].first_ms, 2u);
  }
}

TEST(Campaign, InjectionAfterRunEndHasNoEffect) {
  const CampaignResult result = run_campaign(toy_run, toy_config());
  for (const InjectionRecord& record : result.records) {
    if (record.injection_index != 2) continue;
    EXPECT_FALSE(record.report.any_divergence());
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  CampaignConfig one = toy_config();
  one.threads = 1;
  CampaignConfig four = toy_config();
  four.threads = 4;
  const CampaignResult a = run_campaign(toy_run, one);
  const CampaignResult b = run_campaign(toy_run, four);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i].report.per_signal;
    const auto& rb = b.records[i].report.per_signal;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t s = 0; s < ra.size(); ++s) {
      EXPECT_EQ(ra[s].diverged, rb[s].diverged);
      EXPECT_EQ(ra[s].first_ms, rb[s].first_ms);
    }
  }
}

TEST(Campaign, StochasticModelsGetIndependentSeeds) {
  CampaignConfig config;
  config.test_case_count = 1;
  config.injections = {
      InjectionSpec{0, 2 * sim::kMillisecond, random_replacement()},
      InjectionSpec{0, 2 * sim::kMillisecond, random_replacement()},
  };
  // Capture the injected values via the observed_value in the report.
  const CampaignResult result = run_campaign(toy_run, config);
  ASSERT_EQ(result.records.size(), 2u);
  const auto& d0 = result.records[0].report.per_signal[0];
  const auto& d1 = result.records[1].report.per_signal[0];
  ASSERT_TRUE(d0.diverged);
  ASSERT_TRUE(d1.diverged);
  EXPECT_NE(d0.observed_value, d1.observed_value);
}

TEST(Campaign, ContractsOnBadConfig) {
  CampaignConfig config;
  config.test_case_count = 0;
  EXPECT_THROW(run_campaign(toy_run, config), ContractViolation);
  EXPECT_THROW(run_campaign(nullptr, toy_config()), ContractViolation);
}

TEST(Campaign, GoldenRunsReceiveNoInjection) {
  std::atomic<int> golden_with_injection{0};
  const RunFunction probe = [&](const RunRequest& request) {
    if (!request.injection.has_value()) {
      // golden
    } else if (request.injection->when == 0) {
      golden_with_injection.fetch_add(1);
    }
    return toy_run(request);
  };
  run_campaign(probe, toy_config());
  EXPECT_EQ(golden_with_injection.load(), 0);
}

}  // namespace
}  // namespace propane::fi
