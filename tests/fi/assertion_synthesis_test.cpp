#include "fi/assertion_synthesis.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TraceSet make_trace(std::vector<std::vector<std::uint16_t>> rows,
                    std::vector<std::string> names) {
  TraceSet trace(std::move(names));
  for (auto& row : rows) trace.append(std::move(row));
  return trace;
}

TEST(ProfileSignals, MinMaxAndDelta) {
  const TraceSet golden =
      make_trace({{10, 0}, {14, 0}, {12, 0}, {20, 0}}, {"a", "b"});
  const auto profiles = profile_signals(std::span(&golden, 1));
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].min, 10u);
  EXPECT_EQ(profiles[0].max, 20u);
  EXPECT_EQ(profiles[0].max_delta, 8u);  // 12 -> 20
  EXPECT_EQ(profiles[1].min, 0u);
  EXPECT_EQ(profiles[1].max, 0u);
  EXPECT_EQ(profiles[1].max_delta, 0u);
}

TEST(ProfileSignals, EnvelopeSpansMultipleGoldens) {
  const std::vector<TraceSet> goldens = {
      make_trace({{10}, {20}}, {"a"}),
      make_trace({{5}, {40}}, {"a"}),
  };
  const auto profiles = profile_signals(goldens);
  EXPECT_EQ(profiles[0].min, 5u);
  EXPECT_EQ(profiles[0].max, 40u);
  EXPECT_EQ(profiles[0].max_delta, 35u);
}

TEST(ProfileSignals, DeltaIsWrapAware) {
  // 65535 -> 2 is a wrap-aware distance of 3, not 65533.
  const TraceSet golden = make_trace({{65535}, {2}}, {"a"});
  const auto profiles = profile_signals(std::span(&golden, 1));
  EXPECT_EQ(profiles[0].max_delta, 3u);
}

TEST(ProfileSignals, EmptyGoldensViolateContract) {
  EXPECT_THROW(profile_signals({}), ContractViolation);
}

TEST(AddSynthesizedEdms, RangeAndRateForNormalSignal) {
  SignalProfile profile{100, 200, 10, false};
  EdmMonitor monitor;
  add_synthesized_edms(monitor, 0, profile);
  EXPECT_EQ(monitor.size(), 2u);  // range + rate

  SignalBus bus;
  bus.add_signal("s", 150);
  monitor.step(bus, 0);
  EXPECT_FALSE(monitor.detected());  // inside the envelope

  bus.write(0, 300);  // beyond max + margin(64)
  monitor.step(bus, 1);
  EXPECT_TRUE(monitor.detected());
}

TEST(AddSynthesizedEdms, RangeCheckRespectsMargin) {
  SignalProfile profile{100, 200, 200, false};
  EdmMonitor monitor;
  add_synthesized_edms(monitor, 0, profile, {.range_margin = 10});
  SignalBus bus;
  bus.add_signal("s", 205);  // within max + 10
  monitor.step(bus, 0);
  EXPECT_FALSE(monitor.detected());
  bus.write(0, 211);
  monitor.step(bus, 1);
  EXPECT_TRUE(monitor.detected());
}

TEST(AddSynthesizedEdms, WrappingSignalGetsRateCheckOnly) {
  SignalProfile profile{0, 65535, 1000, false};  // spans the whole range
  EdmMonitor monitor;
  add_synthesized_edms(monitor, 0, profile);
  EXPECT_EQ(monitor.size(), 1u);  // rate only
}

TEST(AddSynthesizedEdms, RateBoundScalesObservedDelta) {
  SignalProfile profile{0, 100, 10, false};
  EdmMonitor monitor;
  add_synthesized_edms(monitor, 0, profile, {.rate_factor = 2.0});
  SignalBus bus;
  bus.add_signal("s", 50);
  monitor.step(bus, 0);
  bus.write(0, 70);  // delta 20 == 10 * 2: allowed
  monitor.step(bus, 1);
  EXPECT_FALSE(monitor.detected());
  bus.write(0, 95);  // delta 25 > 20 but also out of... range is 0..164, ok
  monitor.step(bus, 2);
  EXPECT_TRUE(monitor.detected());
}

TEST(AddSynthesizedErm, HoldsLastGoodWithinEnvelope) {
  SignalProfile profile{100, 200, 10, false};
  ErmHarness harness;
  EXPECT_TRUE(add_synthesized_erm(harness, 0, profile));
  EXPECT_EQ(harness.size(), 1u);

  SignalBus bus;
  bus.add_signal("s", 150);
  harness.step(bus, 0);
  EXPECT_FALSE(harness.recovered());
  bus.write(0, 50000);
  harness.step(bus, 1);
  EXPECT_TRUE(harness.recovered());
  EXPECT_EQ(bus.read(0), 150u);  // last good value restored
}

TEST(AddSynthesizedErm, RefusesWrappingSignals) {
  SignalProfile profile{0, 65000, 100, false};
  ErmHarness harness;
  EXPECT_FALSE(add_synthesized_erm(harness, 0, profile));
  EXPECT_EQ(harness.size(), 0u);
}

TEST(AddSynthesizedErm, ExplicitWrapFlagRespected) {
  SignalProfile profile{10, 20, 1, true};
  ErmHarness harness;
  EXPECT_FALSE(add_synthesized_erm(harness, 0, profile));
}

TEST(AddSynthesizedEdms, MarginSaturatesAtRails) {
  SignalProfile profile{5, 65530, 100, false};
  // Not wrapping only if span < wrap_span; force acceptance with a huge
  // wrap_span to exercise the saturating arithmetic.
  EdmMonitor monitor;
  add_synthesized_edms(monitor, 0, profile, {.wrap_span = 65535});
  SignalBus bus;
  bus.add_signal("s", 0);
  monitor.step(bus, 0);  // 0 >= max(0, 5-64) -> in range
  EXPECT_FALSE(monitor.detected());
}

}  // namespace
}  // namespace propane::fi
