#include "fi/delta_campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fi/estimator.hpp"

namespace propane::fi {
namespace {

/// Two-module accumulator chain: src -> M1 -> mid -> M2 -> dst. Every
/// signal accumulates (reads its own previous value), so an injected
/// corruption persists and keeps propagating downstream -- src errors
/// reach mid and dst, mid errors reach dst only. M2's behaviour is
/// parameterised by `m2_mask`: v1 (0xFFFF) lets every diverged mid bit
/// through, a "changed" M2 (0xFF00) masks low-byte divergence, altering
/// dst without ever touching mid.
TraceSet chain_run(const RunRequest& request, std::uint16_t m2_mask) {
  SignalBus bus;
  const BusSignalId src = bus.add_signal("src");
  const BusSignalId mid = bus.add_signal("mid");
  const BusSignalId dst = bus.add_signal("dst");

  std::optional<InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(src, static_cast<std::uint16_t>(
                       bus.read(src) + request.test_case + 3 * ms + 1));
    bus.write(mid, static_cast<std::uint16_t>(bus.read(mid) + bus.read(src)));
    bus.write(dst, static_cast<std::uint16_t>(
                       bus.read(dst) + (bus.read(mid) & m2_mask)));
    recorder.sample();
  }
  return recorder.take();
}

RunFunction chain_runner(std::uint16_t m2_mask = 0xFFFF) {
  return [m2_mask](const RunRequest& request) {
    return chain_run(request, m2_mask);
  };
}

core::SystemModel chain_model() {
  core::SystemModelBuilder builder;
  builder.add_module("M1", {"src"}, {"mid"});
  builder.add_module("M2", {"mid"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M1", "src");
  builder.connect("M1", "mid", "M2", "mid");
  builder.add_system_output("dst", "M2", "dst");
  return std::move(builder).build();
}

SignalBinding chain_binding(const core::SystemModel& model) {
  return SignalBinding::by_name(model, {"src", "mid", "dst"});
}

/// 4 injections per target (2 models x 2 instants) x 2 test cases = 16
/// runs; flats 0..7 target src (consumer M1), flats 8..15 target mid
/// (consumer M2).
CampaignConfig chain_config() {
  CampaignConfig config;
  config.test_case_count = 2;
  const std::vector<ErrorModel> models = {bit_flip(2), bit_flip(10)};
  const std::vector<sim::SimTime> instants = {2 * sim::kMillisecond,
                                              5 * sim::kMillisecond};
  for (const BusSignalId target : {BusSignalId{0}, BusSignalId{1}}) {
    const auto plan = cross_product_plan(target, models, instants);
    config.injections.insert(config.injections.end(), plan.begin(),
                             plan.end());
  }
  config.seed = 0xABCD;
  config.threads = 2;
  return config;
}

ModuleVersionMap v1_tokens() { return {{"M1", 1}, {"M2", 1}}; }

bool src_targeted(const CampaignConfig& config, std::size_t flat) {
  return config.injections[flat / config.test_case_count].target == 0;
}

void expect_same_report(const DivergenceReport& a, const DivergenceReport& b) {
  ASSERT_EQ(a.per_signal.size(), b.per_signal.size());
  for (std::size_t s = 0; s < a.per_signal.size(); ++s) {
    EXPECT_EQ(a.per_signal[s].diverged, b.per_signal[s].diverged);
    EXPECT_EQ(a.per_signal[s].first_ms, b.per_signal[s].first_ms);
  }
}

void expect_same_estimates(const EstimationResult& a,
                           const EstimationResult& b) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].pair.module, b.pairs[i].pair.module);
    EXPECT_EQ(a.pairs[i].injections, b.pairs[i].injections);
    EXPECT_EQ(a.pairs[i].errors, b.pairs[i].errors);
    EXPECT_EQ(a.pairs[i].indirect_errors, b.pairs[i].indirect_errors);
    EXPECT_EQ(a.pairs[i].latency_sum_ms, b.pairs[i].latency_sum_ms);
    EXPECT_EQ(a.pairs[i].latency_count, b.pairs[i].latency_count);
  }
}

/// In-memory cache over a finished campaign, keyed by fingerprint.
class MapCache {
 public:
  void add(const CampaignResult& result) {
    for (const InjectionRecord& record : result.records) {
      ASSERT_NE(record.fingerprint, 0u);
      map_[record.fingerprint] = record;
    }
  }
  DeltaCacheLookup lookup() const {
    return [this](std::uint64_t fp) -> const InjectionRecord* {
      const auto it = map_.find(fp);
      return it == map_.end() ? nullptr : &it->second;
    };
  }

 private:
  std::unordered_map<std::uint64_t, InjectionRecord> map_;
};

TEST(DeltaCampaign, ConsumersByBusFollowsModelWiring) {
  const core::SystemModel model = chain_model();
  const auto consumers = consumers_by_bus(model, chain_binding(model), 4);
  ASSERT_EQ(consumers.size(), 4u);
  EXPECT_EQ(consumers[0], (std::vector<core::ModuleId>{0}));  // src -> M1
  EXPECT_EQ(consumers[1], (std::vector<core::ModuleId>{1}));  // mid -> M2
  EXPECT_TRUE(consumers[2].empty());                          // dst -> nobody
  EXPECT_TRUE(consumers[3].empty());                          // unbound bus id
}

TEST(DeltaCampaign, FingerprintsAreDeterministicAndNonZero) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();
  const auto a = run_fingerprints(config, model, binding, v1_tokens());
  const auto b = run_fingerprints(config, model, binding, v1_tokens());
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a, b);
  for (const std::uint64_t fp : a) EXPECT_NE(fp, 0u);
}

TEST(DeltaCampaign, MasterSeedInvalidatesEveryRun) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  CampaignConfig config = chain_config();
  const auto before = run_fingerprints(config, model, binding, v1_tokens());
  config.seed ^= 1;
  const auto after = run_fingerprints(config, model, binding, v1_tokens());
  for (std::size_t flat = 0; flat < before.size(); ++flat) {
    EXPECT_NE(before[flat], after[flat]) << "flat " << flat;
  }
}

TEST(DeltaCampaign, ModuleTokenInvalidatesOnlyItsInputTargets) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();
  const auto before = run_fingerprints(config, model, binding, v1_tokens());
  const auto after =
      run_fingerprints(config, model, binding, {{"M1", 1}, {"M2", 2}});
  for (std::size_t flat = 0; flat < before.size(); ++flat) {
    if (src_targeted(config, flat)) {
      EXPECT_EQ(before[flat], after[flat]) << "flat " << flat;
    } else {
      EXPECT_NE(before[flat], after[flat]) << "flat " << flat;
    }
  }
}

TEST(DeltaCampaign, PlanDetailsChangeTheFingerprint) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();
  const auto base = run_fingerprints(config, model, binding, v1_tokens());

  CampaignConfig when = config;
  when.injections[0].when += sim::kMillisecond;
  EXPECT_NE(run_fingerprints(when, model, binding, v1_tokens())[0], base[0]);

  CampaignConfig target = config;
  target.injections[0].target = 1;
  EXPECT_NE(run_fingerprints(target, model, binding, v1_tokens())[0], base[0]);

  CampaignConfig m = config;
  m.injections[0].model = bit_flip(9);
  EXPECT_NE(run_fingerprints(m, model, binding, v1_tokens())[0], base[0]);

  CampaignConfig phase = config;
  phase.injections[0].phase = InjectionPhase::kPreBackground;
  EXPECT_NE(run_fingerprints(phase, model, binding, v1_tokens())[0], base[0]);
}

TEST(DeltaCampaign, EmptyCacheMatchesRunCampaign) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();

  const CampaignResult cold = run_campaign(chain_runner(), config);
  DeltaOptions options;
  options.module_versions = v1_tokens();
  const DeltaResult delta =
      run_delta_campaign(chain_runner(), config, model, binding, options);

  EXPECT_EQ(delta.stats.total, 16u);
  EXPECT_EQ(delta.stats.hits, 0u);
  EXPECT_EQ(delta.stats.misses, 16u);
  ASSERT_EQ(delta.campaign.records.size(), cold.records.size());
  for (std::size_t i = 0; i < cold.records.size(); ++i) {
    const InjectionRecord& d = delta.campaign.records[i];
    EXPECT_EQ(d.injection_index, cold.records[i].injection_index);
    EXPECT_EQ(d.test_case, cold.records[i].test_case);
    EXPECT_NE(d.fingerprint, 0u);  // stamped, unlike plain run_campaign
    EXPECT_FALSE(d.replayed);
    expect_same_report(d.report, cold.records[i].report);
  }
}

TEST(DeltaCampaign, FullCacheReplaysEverything) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();

  DeltaOptions options;
  options.module_versions = v1_tokens();
  const DeltaResult first =
      run_delta_campaign(chain_runner(), config, model, binding, options);
  MapCache cache;
  cache.add(first.campaign);

  std::mutex mu;
  std::size_t replay_callbacks = 0;
  options.lookup = cache.lookup();
  options.on_replay = [&](const InjectionRecord& record) {
    const std::lock_guard<std::mutex> lock(mu);
    ++replay_callbacks;
    EXPECT_TRUE(record.replayed);
    EXPECT_NE(record.fingerprint, 0u);
  };
  const DeltaResult second =
      run_delta_campaign(chain_runner(), config, model, binding, options);

  EXPECT_EQ(second.stats.hits, 16u);
  EXPECT_EQ(second.stats.misses, 0u);
  EXPECT_EQ(replay_callbacks, 16u);
  ASSERT_EQ(second.campaign.records.size(), first.campaign.records.size());
  for (std::size_t i = 0; i < first.campaign.records.size(); ++i) {
    EXPECT_TRUE(second.campaign.records[i].replayed);
    expect_same_report(second.campaign.records[i].report,
                       first.campaign.records[i].report);
  }
}

TEST(DeltaCampaign, ChangedModuleReExecutesOnlyItsRuns) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();

  DeltaOptions options;
  options.module_versions = v1_tokens();
  const DeltaResult baseline =
      run_delta_campaign(chain_runner(0xFFFF), config, model, binding,
                         options);
  MapCache cache;
  cache.add(baseline.campaign);

  // "Edit" M2: new behaviour (mask 0xFF00) and a bumped version token.
  options.lookup = cache.lookup();
  options.module_versions = {{"M1", 1}, {"M2", 2}};
  const DeltaResult delta = run_delta_campaign(chain_runner(0xFF00), config,
                                               model, binding, options);
  EXPECT_EQ(delta.stats.hits, 8u);    // src-targeted runs (consumer M1)
  EXPECT_EQ(delta.stats.misses, 8u);  // mid-targeted runs (consumer M2)
  for (std::size_t flat = 0; flat < delta.campaign.records.size(); ++flat) {
    EXPECT_EQ(delta.campaign.records[flat].replayed,
              src_targeted(config, flat));
  }

  // Compositional exactness: the mixed record set estimates exactly what a
  // cold full campaign of the changed system estimates. Replayed
  // src-targeted records carry stale *downstream* (dst) divergence data,
  // but estimation attributes them only to M1's src->mid pair, which M2
  // cannot influence.
  const CampaignResult cold = run_campaign(chain_runner(0xFF00), config);
  const EstimationResult from_delta =
      estimate_permeability(model, binding, delta.campaign);
  const EstimationResult from_cold =
      estimate_permeability(model, binding, cold);
  expect_same_estimates(from_delta, from_cold);
}

TEST(DeltaCampaign, SpliceEstimationEqualsColdReEstimation) {
  const core::SystemModel model = chain_model();
  const SignalBinding binding = chain_binding(model);
  const CampaignConfig config = chain_config();

  const CampaignResult old_campaign = run_campaign(chain_runner(0xFFFF),
                                                   config);
  const CampaignResult new_campaign = run_campaign(chain_runner(0xFF00),
                                                   config);
  const EstimationResult cached =
      estimate_permeability(model, binding, old_campaign);
  const EstimationResult fresh =
      estimate_permeability(model, binding, new_campaign);

  // Only M2 changed, so splicing M2's fresh rows into the cached estimate
  // must reproduce the cold re-estimation exactly -- pairs and
  // permeability matrix alike.
  const EstimationResult spliced =
      splice_estimation(model, cached, fresh, {core::ModuleId{1}});
  expect_same_estimates(spliced, fresh);
  for (core::ModuleId m = 0; m < model.module_count(); ++m) {
    for (core::PortIndex i = 0; i < model.module(m).input_count(); ++i) {
      for (core::PortIndex k = 0; k < model.module(m).output_count(); ++k) {
        EXPECT_DOUBLE_EQ(spliced.permeability.get(m, i, k),
                         fresh.permeability.get(m, i, k));
      }
    }
  }

  // Sanity: the two behaviours actually differ somewhere in M2, otherwise
  // this test would pass vacuously.
  bool m2_differs = false;
  for (std::size_t i = 0; i < cached.pairs.size(); ++i) {
    if (cached.pairs[i].pair.module == 1 &&
        cached.pairs[i].errors != fresh.pairs[i].errors) {
      m2_differs = true;
    }
  }
  EXPECT_TRUE(m2_differs);
}

}  // namespace
}  // namespace propane::fi
