#include "fi/bootstrap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "exp/report/bootstrap_report.hpp"

namespace propane::fi {
namespace {

using core::SystemModel;
using core::SystemModelBuilder;

/// Model with feedback and two inputs (same as estimator_test):
///   system input "x" -> A -> "a" -> B{in_a, in_fb} -> "b" (system out),
///   "b" also feeds back into B.in_fb.
SystemModel feedback_model() {
  SystemModelBuilder builder;
  builder.add_module("A", {"xin"}, {"a"});
  builder.add_module("B", {"in_a", "in_fb"}, {"b"});
  builder.add_system_input("x");
  builder.connect_system_input("x", "A", "xin");
  builder.connect("A", "a", "B", "in_a");
  builder.connect("B", "b", "B", "in_fb");
  builder.add_system_output("out", "B", "b");
  return std::move(builder).build();
}

/// One hand-made journal record: inject bus signal `target` under
/// `test_case`; `times` lists per-bus-signal first divergence instants
/// (SIZE_MAX = no divergence).
InjectionRecord make_record(BusSignalId target, std::uint32_t test_case,
                            const std::vector<std::size_t>& times) {
  InjectionRecord record;
  record.target = target;
  record.test_case = test_case;
  record.report.per_signal.resize(times.size());
  for (std::size_t s = 0; s < times.size(); ++s) {
    if (times[s] != SIZE_MAX) {
      record.report.per_signal[s].diverged = true;
      record.report.per_signal[s].first_ms = times[s];
    }
  }
  return record;
}

/// A small mixed campaign over the feedback model (bus: x=0, a=1, b=2):
/// two test cases, three targets, with both diverging and clean runs so
/// every resampled permeability has genuine spread.
std::vector<InjectionRecord> mixed_records() {
  std::vector<InjectionRecord> records;
  for (std::uint32_t tc = 0; tc < 2; ++tc) {
    for (int i = 0; i < 6; ++i) {
      // Inject x: A's output a diverges in 4 of 6 runs.
      records.push_back(make_record(
          0, tc,
          {1, (i < 4) ? std::size_t{5} : SIZE_MAX, (i < 2) ? std::size_t{9}
                                                           : SIZE_MAX}));
      // Inject a: B's output b diverges in 3 of 6 runs.
      records.push_back(make_record(
          1, tc, {SIZE_MAX, 2, (i < 3) ? std::size_t{7} : SIZE_MAX}));
      // Inject b (feedback input): b diverges in 1 of 6 runs.
      records.push_back(make_record(
          2, tc, {SIZE_MAX, SIZE_MAX, (i < 1) ? std::size_t{3} : SIZE_MAX}));
    }
  }
  return records;
}

BootstrapResampler make_resampler(const SystemModel& model,
                                  const std::vector<InjectionRecord>& records) {
  const SignalBinding binding =
      SignalBinding::by_name(model, {"x", "a", "b"});
  BootstrapResampler resampler(model, binding, 3);
  for (const InjectionRecord& record : records) resampler.add(record);
  return resampler;
}

BootstrapOptions small_options(std::size_t threads) {
  BootstrapOptions options;
  options.replicates = 64;
  options.seed = 42;
  options.top_k = 2;
  options.threads = threads;
  options.run_fractions = {0.5};
  return options;
}

TEST(Bootstrap, ArtifactsAreByteIdenticalAcrossThreadCountsAndRepeats) {
  const SystemModel model = feedback_model();
  const BootstrapResampler resampler = make_resampler(model, mixed_records());

  const BootstrapResult one = resampler.run(small_options(1));
  const BootstrapResult four = resampler.run(small_options(4));
  const BootstrapResult again = resampler.run(small_options(4));

  EXPECT_EQ(exp::bootstrap_summary_json(one),
            exp::bootstrap_summary_json(four));
  EXPECT_EQ(exp::bootstrap_summary_json(four),
            exp::bootstrap_summary_json(again));
  EXPECT_EQ(exp::bootstrap_bands_svg(one), exp::bootstrap_bands_svg(four));
  EXPECT_EQ(exp::bootstrap_confidence_dot(model, one),
            exp::bootstrap_confidence_dot(model, four));
}

TEST(Bootstrap, RecordArrivalOrderDoesNotChangeTheDraws) {
  const SystemModel model = feedback_model();
  std::vector<InjectionRecord> records = mixed_records();
  const BootstrapResampler forward = make_resampler(model, records);
  std::reverse(records.begin(), records.end());
  const BootstrapResampler backward = make_resampler(model, records);

  EXPECT_EQ(exp::bootstrap_summary_json(forward.run(small_options(2))),
            exp::bootstrap_summary_json(backward.run(small_options(2))));
}

TEST(Bootstrap, SeedChangesTheDraws) {
  const SystemModel model = feedback_model();
  const BootstrapResampler resampler = make_resampler(model, mixed_records());
  BootstrapOptions other_seed = small_options(2);
  other_seed.seed = 43;
  EXPECT_NE(exp::bootstrap_summary_json(resampler.run(small_options(2))),
            exp::bootstrap_summary_json(resampler.run(other_seed)));
}

TEST(Bootstrap, BandCoversTheKnownPermeability) {
  // 40 injections into x with P(a diverges) = 1/2 exactly: the bootstrap
  // band of A's xin->a permeability must straddle 0.5 with real spread.
  const SystemModel model = feedback_model();
  std::vector<InjectionRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(make_record(
        0, 0, {1, (i % 2 == 0) ? std::size_t{4} : SIZE_MAX, SIZE_MAX}));
  }
  const BootstrapResampler resampler = make_resampler(model, records);
  BootstrapOptions options;
  options.replicates = 400;
  options.seed = 7;
  const BootstrapResult result = resampler.run(options);

  const auto cloud = std::find_if(
      result.pairs.begin(), result.pairs.end(), [](const PairCloud& p) {
        return p.module_name == "A" && p.input_name == "x" &&
               p.output_name == "a";
      });
  ASSERT_NE(cloud, result.pairs.end());
  EXPECT_DOUBLE_EQ(cloud->permeability.point, 0.5);
  EXPECT_EQ(cloud->injections, 40u);
  EXPECT_LT(cloud->permeability.band.p2_5, 0.5);
  EXPECT_GT(cloud->permeability.band.p97_5, 0.5);
  EXPECT_GT(cloud->permeability.band.stddev, 0.0);
  // Binomial(40, 0.5)/40 has sd ~= 0.079; the bootstrap 95% band should be
  // in that ballpark, not degenerate and not absurdly wide.
  EXPECT_GT(cloud->permeability.band.p2_5, 0.25);
  EXPECT_LT(cloud->permeability.band.p97_5, 0.75);
}

TEST(Bootstrap, DegenerateCellsYieldTightBandsAndNoNaN) {
  // One cell with every record diverging, one with none: bands collapse to
  // the point value; nothing in any artifact may be NaN.
  const SystemModel model = feedback_model();
  std::vector<InjectionRecord> records;
  for (int i = 0; i < 8; ++i) {
    records.push_back(make_record(0, 0, {1, 5, SIZE_MAX}));        // all err
    records.push_back(make_record(1, 0, {SIZE_MAX, 2, SIZE_MAX}));  // none
  }
  const BootstrapResampler resampler = make_resampler(model, records);
  BootstrapOptions options;
  options.replicates = 100;
  const BootstrapResult result = resampler.run(options);

  for (const PairCloud& pair : result.pairs) {
    EXPECT_TRUE(std::isfinite(pair.permeability.band.stddev));
    EXPECT_DOUBLE_EQ(pair.permeability.band.p2_5, pair.permeability.point);
    EXPECT_DOUBLE_EQ(pair.permeability.band.p97_5, pair.permeability.point);
  }
  const std::string json = exp::bootstrap_summary_json(result);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  // Module A has no incoming internal arcs (OB1): Eq. 4 must serialise as
  // null, not NaN.
  EXPECT_NE(json.find("\"exposure\": null"), std::string::npos);
}

TEST(Bootstrap, RankingStabilityIsAProbabilityDistribution) {
  const SystemModel model = feedback_model();
  const BootstrapResampler resampler = make_resampler(model, mixed_records());
  const BootstrapResult result = resampler.run(small_options(2));

  double top1_sum = 0.0;
  for (const ModuleCloud& m : result.modules) {
    top1_sum += m.p_top1_exposure;
    EXPECT_GE(m.p_topk_exposure, m.p_top1_exposure);
    EXPECT_LE(m.p_topk_exposure, 1.0);
  }
  EXPECT_NEAR(top1_sum, 1.0, 1e-12);

  double path_top1_sum = 0.0;
  for (const PathCloud& p : result.paths) path_top1_sum += p.p_top1;
  EXPECT_NEAR(path_top1_sum, 1.0, 1e-12);

  // The point-estimate EDM/ERM winners carry their own top-1 stability.
  EXPECT_FALSE(result.edm_module.empty());
  EXPECT_GE(result.edm_p_top1, 0.0);
  EXPECT_LE(result.edm_p_top1, 1.0);
}

TEST(Bootstrap, ConvergenceLadderEndsAtTheFullCampaign) {
  const SystemModel model = feedback_model();
  const std::vector<InjectionRecord> records = mixed_records();
  const BootstrapResampler resampler = make_resampler(model, records);
  BootstrapOptions options;
  options.replicates = 64;
  options.run_fractions = {0.25, 0.5, 0.25};  // duplicates collapse
  const BootstrapResult result = resampler.run(options);

  ASSERT_EQ(result.convergence.size(), 3u);
  EXPECT_DOUBLE_EQ(result.convergence[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(result.convergence[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(result.convergence[2].fraction, 1.0);
  EXPECT_LT(result.convergence[0].draws, result.convergence[2].draws);
  // The full-size point restates the main clouds' Eq. 5 bands exactly.
  EXPECT_EQ(result.convergence[2].draws, records.size());
  for (std::size_t m = 0; m < result.modules.size(); ++m) {
    EXPECT_DOUBLE_EQ(result.convergence[2].module_exposure[m].band.p50,
                     result.modules[m].nonweighted_exposure.band.p50);
  }
}

TEST(Bootstrap, RunWithoutRecordsViolatesContract) {
  const SystemModel model = feedback_model();
  const SignalBinding binding =
      SignalBinding::by_name(model, {"x", "a", "b"});
  const BootstrapResampler empty(model, binding, 3);
  EXPECT_THROW(empty.run(BootstrapOptions{}), ContractViolation);

  const BootstrapResampler loaded = make_resampler(model, mixed_records());
  BootstrapOptions zero;
  zero.replicates = 0;
  EXPECT_THROW(loaded.run(zero), ContractViolation);
}

}  // namespace
}  // namespace propane::fi
