#include "fi/edm_selection.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

CandidateEdm candidate(std::string name, std::vector<bool> detects,
                       double cost = 1.0) {
  CandidateEdm c;
  c.name = std::move(name);
  c.cost = cost;
  c.detects = std::move(detects);
  return c;
}

TEST(EdmSelection, PicksTheSingleCoveringCandidate) {
  const std::vector<CandidateEdm> candidates = {
      candidate("a", {true, true, true}),
      candidate("b", {true, false, false}),
  };
  const auto result = select_edms_greedy(candidates, 3);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].candidate, 0u);
  EXPECT_EQ(result.covered, 3u);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
}

TEST(EdmSelection, ComplementarySetsBothPicked) {
  const std::vector<CandidateEdm> candidates = {
      candidate("left", {true, true, false, false}),
      candidate("right", {false, false, true, true}),
      candidate("overlap", {false, true, true, false}),
  };
  const auto result = select_edms_greedy(candidates, 4);
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.steps[0].candidate, 0u);  // ties break by order
  EXPECT_EQ(result.steps[1].candidate, 1u);  // overlap adds nothing new
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
}

TEST(EdmSelection, CostChangesTheGreedyOrder) {
  // "wide" covers 3 errors at cost 6 (ratio 0.5); "narrow" covers 2 at
  // cost 1 (ratio 2.0): narrow goes first despite lower raw coverage.
  const std::vector<CandidateEdm> candidates = {
      candidate("wide", {true, true, true, false}, 6.0),
      candidate("narrow", {true, true, false, false}, 1.0),
  };
  const auto result = select_edms_greedy(candidates, 4);
  ASSERT_GE(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].candidate, 1u);
}

TEST(EdmSelection, BudgetStopsSelection) {
  const std::vector<CandidateEdm> candidates = {
      candidate("a", {true, false, false}, 1.0),
      candidate("b", {false, true, false}, 1.0),
      candidate("c", {false, false, true}, 1.0),
  };
  const auto result =
      select_edms_greedy(candidates, 3, {.cost_budget = 2.0});
  EXPECT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.covered, 2u);
  EXPECT_LE(result.steps.back().cumulative_cost, 2.0);
}

TEST(EdmSelection, TargetCoverageStopsEarly) {
  const std::vector<CandidateEdm> candidates = {
      candidate("a", {true, true, false, false}),
      candidate("b", {false, false, true, false}),
      candidate("c", {false, false, false, true}),
  };
  const auto result =
      select_edms_greedy(candidates, 4, {.target_coverage = 0.5});
  EXPECT_EQ(result.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(result.coverage(), 0.5);
}

TEST(EdmSelection, UselessCandidatesNeverPicked) {
  const std::vector<CandidateEdm> candidates = {
      candidate("useless", {false, false}),
      candidate("good", {true, false}),
  };
  const auto result = select_edms_greedy(candidates, 2);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].candidate, 1u);
  EXPECT_EQ(result.covered, 1u);
  EXPECT_LT(result.coverage(), 1.0);
}

TEST(EdmSelection, EmptyUniverseAndCandidates) {
  const auto none = select_edms_greedy({}, 0);
  EXPECT_TRUE(none.steps.empty());
  EXPECT_DOUBLE_EQ(none.coverage(), 0.0);
}

TEST(EdmSelection, StepsTrackCumulativeState) {
  const std::vector<CandidateEdm> candidates = {
      candidate("a", {true, true, false, false}, 2.0),
      candidate("b", {false, false, true, false}, 1.0),
  };
  const auto result = select_edms_greedy(candidates, 4);
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.steps[0].newly_covered, 2u);
  EXPECT_DOUBLE_EQ(result.steps[0].cumulative_coverage, 0.5);
  EXPECT_DOUBLE_EQ(result.steps[1].cumulative_cost, 3.0);
  EXPECT_DOUBLE_EQ(result.steps[1].cumulative_coverage, 0.75);
}

TEST(EdmSelection, ContractsOnBadInput) {
  EXPECT_THROW(select_edms_greedy({candidate("short", {true})}, 2),
               ContractViolation);
  EXPECT_THROW(
      select_edms_greedy({candidate("free", {true}, 0.0)}, 1),
      ContractViolation);
}

}  // namespace
}  // namespace propane::fi
