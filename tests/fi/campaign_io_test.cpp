#include "fi/campaign_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"

namespace propane::fi {
namespace {

CampaignResult small_result() {
  CampaignResult result;
  result.signal_names = {"src", "dst"};
  result.injection_model_names = {"bitflip(3)", "offset(-1)"};
  InjectionRecord a;
  a.injection_index = 0;
  a.test_case = 1;
  a.target = 0;
  a.when = 2 * sim::kSecond;
  a.report.per_signal.resize(2);
  a.report.per_signal[0] = Divergence{true, 2000, 10, 18};
  a.report.per_signal[1] = Divergence{true, 2004, 5, 7};
  result.records.push_back(a);

  InjectionRecord b;
  b.injection_index = 1;
  b.test_case = 0;
  b.target = 1;
  b.when = 500 * sim::kMillisecond;
  b.report.per_signal.resize(2);  // no divergence
  result.records.push_back(b);
  return result;
}

TEST(CampaignIo, SummaryHasOneRowPerRecord) {
  std::ostringstream out;
  write_campaign_summary_csv(out, small_result());
  const auto text = out.str();
  EXPECT_EQ(text,
            "injection_index,test_case,target,when_ms,model,"
            "diverged_signals\n"
            "0,1,src,2000,bitflip(3),2\n"
            "1,0,dst,500,offset(-1),0\n");
}

TEST(CampaignIo, DivergenceDetailListsOnlyDivergedSignals) {
  std::ostringstream out;
  write_divergence_csv(out, small_result());
  const auto text = out.str();
  EXPECT_EQ(text,
            "injection_index,test_case,target,when_ms,model,signal,"
            "first_ms,golden_value,observed_value\n"
            "0,1,src,2000,bitflip(3),src,2000,10,18\n"
            "0,1,src,2000,bitflip(3),dst,2004,5,7\n");
}

TEST(CampaignIo, EscapesUserSuppliedFieldsAndRoundTrips) {
  // Model and signal names are user-supplied: a name containing the CSV
  // separator or quotes must survive an emit -> parse round trip intact.
  CampaignResult result;
  result.signal_names = {"bus,raw \"A\"", "dst"};
  result.injection_model_names = {"replace(0x10, \"sticky\"),v2"};
  InjectionRecord record;
  record.injection_index = 0;
  record.test_case = 0;
  record.target = 0;
  record.when = 1 * sim::kSecond;
  record.report.per_signal.resize(2);
  record.report.per_signal[1] = Divergence{true, 1002, 3, 4};
  result.records.push_back(record);

  std::ostringstream summary;
  write_campaign_summary_csv(summary, result);
  std::istringstream summary_in(summary.str());
  std::string line;
  ASSERT_TRUE(std::getline(summary_in, line));  // header
  ASSERT_TRUE(std::getline(summary_in, line));
  auto fields = parse_csv_row(line);
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[2], "bus,raw \"A\"");
  EXPECT_EQ(fields[4], "replace(0x10, \"sticky\"),v2");

  std::ostringstream detail;
  write_divergence_csv(detail, result);
  std::istringstream detail_in(detail.str());
  ASSERT_TRUE(std::getline(detail_in, line));  // header
  ASSERT_TRUE(std::getline(detail_in, line));
  fields = parse_csv_row(line);
  ASSERT_EQ(fields.size(), 9u);
  EXPECT_EQ(fields[2], "bus,raw \"A\"");
  EXPECT_EQ(fields[4], "replace(0x10, \"sticky\"),v2");
  EXPECT_EQ(fields[5], "dst");
}

TEST(CampaignIo, EmptyCampaignWritesHeadersOnly) {
  CampaignResult empty;
  empty.signal_names = {"x"};
  std::ostringstream summary;
  write_campaign_summary_csv(summary, empty);
  EXPECT_EQ(summary.str().find('\n'), summary.str().size() - 1);
  std::ostringstream detail;
  write_divergence_csv(detail, empty);
  EXPECT_EQ(detail.str().find('\n'), detail.str().size() - 1);
}

}  // namespace
}  // namespace propane::fi
