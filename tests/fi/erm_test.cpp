#include "fi/erm.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(ClampErm, CorrectsOnlyOutOfRange) {
  ClampErm erm(0, 10, 100);
  EXPECT_FALSE(erm.correct(50, 0).has_value());
  EXPECT_EQ(erm.correct(5, 0), 10);
  EXPECT_EQ(erm.correct(200, 0), 100);
}

TEST(ClampErm, RejectsInvertedRange) {
  EXPECT_THROW(ClampErm(0, 10, 5), ContractViolation);
}

TEST(HoldLastGoodErm, ReplacesWithLastGoodValue) {
  HoldLastGoodErm erm(0, 10, 100, /*fallback=*/42);
  // No good value seen yet: fall back.
  EXPECT_EQ(erm.correct(500, 0), 42);
  // Good value updates the memory.
  EXPECT_FALSE(erm.correct(80, 1).has_value());
  EXPECT_EQ(erm.correct(500, 2), 80);
  EXPECT_EQ(erm.correct(3, 3), 80);
}

TEST(RateLimitErm, SlewsTowardsObservedValue) {
  RateLimitErm erm(0, 10);
  EXPECT_FALSE(erm.correct(100, 0).has_value());  // first sample
  EXPECT_FALSE(erm.correct(105, 1).has_value());  // within limit
  EXPECT_EQ(erm.correct(200, 2), 115);            // clipped to +10
  EXPECT_EQ(erm.correct(200, 3), 125);            // keeps slewing
  EXPECT_FALSE(erm.correct(130, 4).has_value());  // back within limit
}

TEST(RateLimitErm, DownwardSlew) {
  RateLimitErm erm(0, 10);
  EXPECT_FALSE(erm.correct(100, 0).has_value());
  EXPECT_EQ(erm.correct(0, 1), 90);
}

TEST(ErmHarness, AppliesCorrectionsToBus) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 50);
  ErmHarness harness;
  harness.add(std::make_unique<ClampErm>(a, 0, 100));
  EXPECT_EQ(harness.size(), 1u);

  harness.step(bus, 0);
  EXPECT_FALSE(harness.recovered());
  EXPECT_EQ(bus.read(a), 50u);

  bus.write(a, 5000);
  harness.step(bus, 1);
  ASSERT_TRUE(harness.recovered());
  EXPECT_EQ(bus.read(a), 100u);
  ASSERT_EQ(harness.events().size(), 1u);
  EXPECT_EQ(harness.events()[0].ms, 1u);
  EXPECT_EQ(harness.events()[0].rejected_value, 5000u);
  EXPECT_EQ(harness.events()[0].corrected_value, 100u);
}

TEST(ErmHarness, MultipleErmsOnDifferentSignals) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 50);
  const BusSignalId b = bus.add_signal("b", 50);
  ErmHarness harness;
  harness.add(std::make_unique<ClampErm>(a, 0, 100));
  harness.add(std::make_unique<HoldLastGoodErm>(b, 0, 100, 1));
  bus.write(a, 5000);
  bus.write(b, 5000);
  harness.step(bus, 0);
  EXPECT_EQ(bus.read(a), 100u);
  EXPECT_EQ(bus.read(b), 1u);  // fallback (no good value recorded yet)
  EXPECT_EQ(harness.events().size(), 2u);
}

TEST(ErmHarness, NullErmViolatesContract) {
  ErmHarness harness;
  EXPECT_THROW(harness.add(nullptr), ContractViolation);
}

}  // namespace
}  // namespace propane::fi
