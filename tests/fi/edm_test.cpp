#include "fi/edm.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::fi {
namespace {

TEST(RangeEdm, AcceptsInsideRejectsOutside) {
  RangeEdm edm(0, 10, 100);
  EXPECT_TRUE(edm.check(10, 0));
  EXPECT_TRUE(edm.check(55, 0));
  EXPECT_TRUE(edm.check(100, 0));
  EXPECT_FALSE(edm.check(9, 0));
  EXPECT_FALSE(edm.check(101, 0));
}

TEST(RangeEdm, RejectsInvertedRange) {
  EXPECT_THROW(RangeEdm(0, 10, 5), ContractViolation);
}

TEST(RateEdm, FirstSampleAlwaysAccepted) {
  RateEdm edm(0, 5);
  EXPECT_TRUE(edm.check(60000, 0));
}

TEST(RateEdm, DetectsJumpsBeyondDelta) {
  RateEdm edm(0, 5);
  EXPECT_TRUE(edm.check(100, 0));
  EXPECT_TRUE(edm.check(105, 1));
  EXPECT_FALSE(edm.check(120, 2));
  // State advances even on violation: 120 -> 121 is fine.
  EXPECT_TRUE(edm.check(121, 3));
}

TEST(RateEdm, WrapAwareDistance) {
  RateEdm edm(0, 5);
  EXPECT_TRUE(edm.check(65534, 0));
  EXPECT_TRUE(edm.check(2, 1));  // distance 4 across the wrap
  RateEdm edm2(0, 5);
  EXPECT_TRUE(edm2.check(0, 0));
  EXPECT_FALSE(edm2.check(32768, 1));  // half the circle
}

TEST(FrozenEdm, FiresWhenSignalStopsChanging) {
  FrozenEdm edm(0, 3);
  EXPECT_TRUE(edm.check(5, 0));
  EXPECT_TRUE(edm.check(5, 1));
  EXPECT_TRUE(edm.check(5, 2));
  EXPECT_TRUE(edm.check(5, 3));   // exactly at the limit
  EXPECT_FALSE(edm.check(5, 4));  // frozen too long
  EXPECT_TRUE(edm.check(6, 5));   // change resets the watchdog
}

TEST(FrozenEdm, GracePeriodSuppressesEarlyAlarms) {
  FrozenEdm edm(0, 2, /*grace_ms=*/10);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    EXPECT_TRUE(edm.check(7, ms)) << ms;
  }
  EXPECT_FALSE(edm.check(7, 11));
}

TEST(FrozenEdm, RejectsZeroWindow) {
  EXPECT_THROW(FrozenEdm(0, 0), ContractViolation);
}

TEST(EdmMonitor, RecordsDetectionEvents) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 50);
  const BusSignalId b = bus.add_signal("b", 0);
  EdmMonitor monitor;
  monitor.add(std::make_unique<RangeEdm>(a, 0, 100));
  monitor.add(std::make_unique<RangeEdm>(b, 0, 10));
  EXPECT_EQ(monitor.size(), 2u);

  monitor.step(bus, 0);
  EXPECT_FALSE(monitor.detected());

  bus.write(b, 200);
  monitor.step(bus, 1);
  ASSERT_TRUE(monitor.detected());
  ASSERT_EQ(monitor.events().size(), 1u);
  EXPECT_EQ(monitor.events()[0].ms, 1u);
  EXPECT_EQ(monitor.events()[0].signal, b);
  EXPECT_EQ(monitor.events()[0].value, 200u);
  EXPECT_EQ(monitor.first_detection_ms(), 1u);
}

TEST(EdmMonitor, NoEventsMeansNoFirstDetection) {
  EdmMonitor monitor;
  EXPECT_FALSE(monitor.first_detection_ms().has_value());
  EXPECT_THROW(monitor.add(nullptr), ContractViolation);
}

TEST(EdmMonitor, MultipleFiringsAccumulate) {
  SignalBus bus;
  const BusSignalId a = bus.add_signal("a", 500);
  EdmMonitor monitor;
  monitor.add(std::make_unique<RangeEdm>(a, 0, 100));
  monitor.step(bus, 3);
  monitor.step(bus, 4);
  EXPECT_EQ(monitor.events().size(), 2u);
  EXPECT_EQ(monitor.first_detection_ms(), 3u);
}

}  // namespace
}  // namespace propane::fi
