// Telemetry must be pure observation: a campaign with metrics, events,
// spans and a progress reporter attached must produce a byte-identical
// permeability CSV to one with everything disabled, and every NDJSON line
// it streams must parse back.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>

#include "core/system_model.hpp"
#include "obs/metrics.hpp"
#include "obs/ndjson.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "store/resume.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;  // run_journaled_campaign creates it
}

/// The toy system of tests/store/resume_test.cpp: "src" is freshly
/// produced every tick, "dst" mirrors it with the low nibble masked off.
fi::TraceSet toy_run(const fi::RunRequest& request) {
  fi::SignalBus bus;
  const fi::BusSignalId src = bus.add_signal("src");
  const fi::BusSignalId dst = bus.add_signal("dst");
  std::optional<fi::InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  fi::TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    bus.write(src, static_cast<std::uint16_t>(request.test_case * 100 + ms));
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(dst, static_cast<std::uint16_t>(bus.read(src) & 0xFFF0));
    recorder.sample();
  }
  return recorder.take();
}

fi::CampaignConfig toy_config() {
  fi::CampaignConfig config;
  config.test_case_count = 3;
  config.injections = {
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(0)},
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(8)},
      fi::InjectionSpec{0, 4 * sim::kMillisecond, fi::bit_flip(12)},
      fi::InjectionSpec{0, 6 * sim::kMillisecond, fi::random_replacement()},
  };
  config.threads = 2;
  return config;
}

std::string journal_csv(const fs::path& dir) {
  core::SystemModelBuilder builder;
  builder.add_module("M", {"in"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M", "in");
  builder.add_system_output("out", "M", "dst");
  const core::SystemModel model = std::move(builder).build();
  const fi::SignalBinding binding =
      fi::SignalBinding::by_name(model, {"src", "dst"});
  std::ostringstream out;
  write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

TEST(TelemetryCampaign, CsvIsByteIdenticalWithTelemetryOnOrOff) {
  // Plain campaign: no telemetry at all.
  const fs::path plain_dir = fresh_dir("telemetry_off");
  const JournalRunSummary plain =
      run_journaled_campaign(toy_run, toy_config(), plain_dir);
  ASSERT_EQ(plain.executed, 12u);

  // Fully instrumented campaign: metrics + NDJSON events + spans + HUD
  // (forced on, rendering into a tmpfile so no terminal is involved).
  const fs::path traced_dir = fresh_dir("telemetry_on");
  obs::MetricsRegistry metrics;
  std::ostringstream events_out;
  obs::NdjsonSink sink(events_out);
  obs::SpanBuffer spans;
  obs::Telemetry telemetry{&metrics, &sink, &spans};

  std::FILE* hud_out = std::tmpfile();
  ASSERT_NE(hud_out, nullptr);
  obs::ProgressReporter::Options hud_options;
  hud_options.force = true;
  hud_options.min_interval_us = 0;
  hud_options.out = hud_out;
  obs::ProgressReporter hud(hud_options);

  JournalRunOptions options;
  options.telemetry = &telemetry;
  options.progress = &hud;
  options.shard_count = 2;
  const JournalRunSummary traced =
      run_journaled_campaign(toy_run, toy_config(), traced_dir, options);
  hud.finish();
  std::fclose(hud_out);

  EXPECT_EQ(traced.executed, plain.executed);
  EXPECT_EQ(traced.total_runs, plain.total_runs);

  // The observable artefact -- the permeability CSV -- must not differ by
  // a single byte.
  EXPECT_EQ(journal_csv(plain_dir), journal_csv(traced_dir));

  // The telemetry itself must be consistent with the campaign...
  EXPECT_EQ(metrics.counter("campaign.runs.injection").value(),
            traced.executed);
  EXPECT_EQ(metrics.counter("campaign.runs.golden").value(), 3u);
  EXPECT_EQ(metrics.counter("campaign.runs.diverged").value(),
            traced.diverged);
  EXPECT_EQ(metrics.counter("journal.appends").value(), traced.executed);
  EXPECT_EQ(metrics.counter("journal.append.bytes").value(),
            traced.journal_bytes);
  EXPECT_GT(traced.wall_seconds, 0.0);

  // ...every event line must parse back...
  std::istringstream lines(events_out.str());
  std::size_t event_lines = 0, injection_done = 0;
  for (std::string line; std::getline(lines, line);) {
    const auto fields = obs::parse_flat_json_object(line);
    ASSERT_TRUE(fields.has_value()) << line;
    ++event_lines;
    for (const obs::Field& field : *fields) {
      if (field.key == "event" &&
          field.value == obs::Value("injection.done")) {
        ++injection_done;
      }
    }
  }
  EXPECT_GT(event_lines, 0u);
  EXPECT_EQ(injection_done, traced.executed);

  // ...and the spans must include the campaign phases.
  bool saw_campaign_span = false;
  for (const obs::FinishedSpan& span : spans.snapshot()) {
    if (span.name == "campaign") saw_campaign_span = true;
  }
  EXPECT_TRUE(saw_campaign_span);

  // The HUD tracked the same counts the summary reports.
  EXPECT_EQ(hud.snapshot().completed, traced.executed);
  EXPECT_EQ(hud.snapshot().diverged, traced.diverged);
}

TEST(TelemetryCampaign, ResumedSessionKeepsCsvIdenticalToo) {
  // Journal half the runs with telemetry on, the rest with it off: the
  // final CSV must still match a clean untraced run.
  const fs::path reference_dir = fresh_dir("telemetry_reference");
  run_journaled_campaign(toy_run, toy_config(), reference_dir);

  const fs::path split_dir = fresh_dir("telemetry_split");
  {
    obs::MetricsRegistry metrics;
    obs::Telemetry telemetry{&metrics, nullptr, nullptr};
    JournalRunOptions first_half;
    first_half.process_count = 2;
    first_half.process_index = 0;
    first_half.telemetry = &telemetry;
    run_journaled_campaign(toy_run, toy_config(), split_dir, first_half);
  }
  JournalRunOptions second_half;
  second_half.process_count = 2;
  second_half.process_index = 1;
  run_journaled_campaign(toy_run, toy_config(), split_dir, second_half);

  EXPECT_EQ(journal_csv(reference_dir), journal_csv(split_dir));
}

}  // namespace
}  // namespace propane::store
