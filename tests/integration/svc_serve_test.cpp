// Dispatcher integration tests: `serve_campaign` drives real worker
// processes (the propane CLI, located via PROPANE_CLI_PATH) over pipes,
// and the resulting journal must be indistinguishable from a
// single-process campaign -- including when a worker is SIGKILLed
// mid-lease and its range is requeued to a survivor.
#include "svc/dispatcher.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "arrestment/model.hpp"
#include "arrestment/testcase.hpp"
#include "arrestment/warm_start.hpp"
#include "exp/paper_experiment.hpp"
#include "store/resume.hpp"

namespace propane::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::string> worker_command(const fs::path& dir) {
  return {PROPANE_CLI_PATH, "campaign",  "worker",        "--journal",
          dir.string(),     "--scale",   "smoke",         "--no-telemetry"};
}

std::string serve_csv(const fs::path& dir, const core::SystemModel& model,
                      const fi::SignalBinding& binding) {
  std::ostringstream out;
  store::write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

/// Single-process reference journal for the smoke scale, exactly as the
/// CLI's `campaign run --scale smoke` would produce it.
void run_reference(const exp::ExperimentScale& scale,
                   const fi::CampaignConfig& config, const fs::path& dir) {
  const std::vector<arr::TestCase> cases =
      scale.custom_cases.empty()
          ? arr::grid_test_cases(scale.mass_count, scale.velocity_count)
          : scale.custom_cases;
  store::run_journaled_campaign(
      arr::warm_campaign_runner(cases, config, scale.duration), config, dir);
}

TEST(ServeCampaign, TwoWorkersMatchSingleProcessByteForByte) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path reference = fresh_dir("serve_reference");
  run_reference(scale, config, reference);

  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  const fs::path dir = fresh_dir("serve_two_workers");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  options.model = &model;
  options.binding = &binding;
  options.bus_signal_count = binding.bus_upper_bound();
  const ServeSummary summary = serve_campaign(config, dir, options);

  EXPECT_EQ(summary.workers_spawned, 2u);
  EXPECT_EQ(summary.workers_died, 0u);
  EXPECT_EQ(summary.leases_requeued, 0u);
  EXPECT_EQ(summary.leases_completed, summary.leases_granted);
  EXPECT_EQ(summary.executed, summary.total_runs);
  EXPECT_GE(summary.partial_estimates, 1u);
  EXPECT_EQ(summary.estimated_runs, summary.total_runs);

  EXPECT_EQ(serve_csv(dir, model, binding),
            serve_csv(reference, model, binding));

  // The lease log reconstructs the session: every grant either completed
  // or was requeued (none here), nothing outstanding.
  const LeaseLogScan scan = scan_lease_log(summary.lease_log_path);
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.campaign.total_runs, summary.total_runs);
  EXPECT_EQ(scan.grants.size(), summary.leases_granted);
  EXPECT_EQ(scan.completions.size(), summary.leases_completed);
  EXPECT_TRUE(scan.outstanding().empty());
}

TEST(ServeCampaign, SigkilledWorkerRangeIsReassignedByteIdentically) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path reference = fresh_dir("serve_kill_reference");
  run_reference(scale, config, reference);

  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  const fs::path dir = fresh_dir("serve_kill");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  // The test's own fault injector: SIGKILL the first worker right after it
  // is granted its first lease, mid-campaign.
  bool killed = false;
  options.on_grant = [&killed](const LeaseGrant&, std::int64_t pid) {
    if (killed) return;
    killed = true;
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  };
  const ServeSummary summary = serve_campaign(config, dir, options);

  EXPECT_TRUE(killed);
  EXPECT_EQ(summary.workers_died, 1u);
  EXPECT_GE(summary.leases_requeued, 1u);

  // The survivor absorbed the requeued range; the journal holds every run
  // exactly once and the estimate is byte-identical to the uninterrupted
  // single-process campaign.
  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, summary.total_runs);
  EXPECT_EQ(serve_csv(dir, model, binding),
            serve_csv(reference, model, binding));

  // The lease log records the death: the killed lease was requeued, and
  // after the session nothing is outstanding.
  const LeaseLogScan scan = scan_lease_log(summary.lease_log_path);
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_EQ(scan.requeues.size(), summary.leases_requeued);
  EXPECT_TRUE(scan.outstanding().empty());
}

TEST(ServeCampaign, ResumesAPartialJournalWithoutReexecution) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  // First serve completes the whole plan; a second serve over the same
  // directory finds nothing left to execute but still converges cleanly.
  const fs::path dir = fresh_dir("serve_resume");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  serve_campaign(config, dir, options);

  const ServeSummary again = serve_campaign(config, dir, options);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.leases_completed, again.leases_granted);
  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, again.total_runs);
  EXPECT_EQ(state.duplicate_count, 0u);

  // Two serve sessions left two lease logs behind.
  EXPECT_EQ(LeaseLogWriter::list_logs(dir).size(), 2u);
}

}  // namespace
}  // namespace propane::svc
