// Dispatcher integration tests: `serve_campaign` drives real worker
// processes (the propane CLI, located via PROPANE_CLI_PATH) over pipes,
// and the resulting journal must be indistinguishable from a
// single-process campaign -- including when a worker is SIGKILLed
// mid-lease and its range is requeued to a survivor. The telemetry tests
// run the same serve with tracing on and check the cross-process span
// ancestry plus the crash flight recorder's postmortem view.
#include "svc/dispatcher.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arrestment/model.hpp"
#include "arrestment/testcase.hpp"
#include "arrestment/warm_start.hpp"
#include "exp/paper_experiment.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "store/resume.hpp"

namespace propane::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::string> worker_command(const fs::path& dir) {
  return {PROPANE_CLI_PATH, "campaign",  "worker",        "--journal",
          dir.string(),     "--scale",   "smoke",         "--no-telemetry"};
}

std::string serve_csv(const fs::path& dir, const core::SystemModel& model,
                      const fi::SignalBinding& binding) {
  std::ostringstream out;
  store::write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

/// Single-process reference journal for the smoke scale, exactly as the
/// CLI's `campaign run --scale smoke` would produce it.
void run_reference(const exp::ExperimentScale& scale,
                   const fi::CampaignConfig& config, const fs::path& dir) {
  const std::vector<arr::TestCase> cases =
      scale.custom_cases.empty()
          ? arr::grid_test_cases(scale.mass_count, scale.velocity_count)
          : scale.custom_cases;
  store::run_journaled_campaign(
      arr::warm_campaign_runner(cases, config, scale.duration), config, dir);
}

TEST(ServeCampaign, TwoWorkersMatchSingleProcessByteForByte) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path reference = fresh_dir("serve_reference");
  run_reference(scale, config, reference);

  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  const fs::path dir = fresh_dir("serve_two_workers");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  options.model = &model;
  options.binding = &binding;
  options.bus_signal_count = binding.bus_upper_bound();
  const ServeSummary summary = serve_campaign(config, dir, options);

  EXPECT_EQ(summary.workers_spawned, 2u);
  EXPECT_EQ(summary.workers_died, 0u);
  EXPECT_EQ(summary.leases_requeued, 0u);
  EXPECT_EQ(summary.leases_completed, summary.leases_granted);
  EXPECT_EQ(summary.executed, summary.total_runs);
  EXPECT_GE(summary.partial_estimates, 1u);
  EXPECT_EQ(summary.estimated_runs, summary.total_runs);

  EXPECT_EQ(serve_csv(dir, model, binding),
            serve_csv(reference, model, binding));

  // The lease log reconstructs the session: every grant either completed
  // or was requeued (none here), nothing outstanding.
  const LeaseLogScan scan = scan_lease_log(summary.lease_log_path);
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.campaign.total_runs, summary.total_runs);
  EXPECT_EQ(scan.grants.size(), summary.leases_granted);
  EXPECT_EQ(scan.completions.size(), summary.leases_completed);
  EXPECT_TRUE(scan.outstanding().empty());
}

TEST(ServeCampaign, SigkilledWorkerRangeIsReassignedByteIdentically) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path reference = fresh_dir("serve_kill_reference");
  run_reference(scale, config, reference);

  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  const fs::path dir = fresh_dir("serve_kill");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  // The test's own fault injector: SIGKILL the first worker right after it
  // is granted its first lease, mid-campaign.
  bool killed = false;
  options.on_grant = [&killed](const LeaseGrant&, std::int64_t pid) {
    if (killed) return;
    killed = true;
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  };
  const ServeSummary summary = serve_campaign(config, dir, options);

  EXPECT_TRUE(killed);
  EXPECT_EQ(summary.workers_died, 1u);
  EXPECT_GE(summary.leases_requeued, 1u);

  // The survivor absorbed the requeued range; the journal holds every run
  // exactly once and the estimate is byte-identical to the uninterrupted
  // single-process campaign.
  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, summary.total_runs);
  EXPECT_EQ(serve_csv(dir, model, binding),
            serve_csv(reference, model, binding));

  // The lease log records the death: the killed lease was requeued, and
  // after the session nothing is outstanding.
  const LeaseLogScan scan = scan_lease_log(summary.lease_log_path);
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_EQ(scan.requeues.size(), summary.leases_requeued);
  EXPECT_TRUE(scan.outstanding().empty());
}

std::vector<std::string> traced_worker_command(const fs::path& dir) {
  return {PROPANE_CLI_PATH, "campaign", "worker", "--journal", dir.string(),
          "--scale",        "smoke"};
}

const obs::Value* field(const std::vector<obs::Field>& row,
                        std::string_view key) {
  for (const obs::Field& f : row) {
    if (f.key == key) return &f.value;
  }
  return nullptr;
}

std::string str_field(const std::vector<obs::Field>& row,
                      std::string_view key) {
  const obs::Value* value = field(row, key);
  return value != nullptr && value->kind() == obs::Value::Kind::kString
             ? value->as_string()
             : std::string();
}

std::uint64_t u64_field(const std::vector<obs::Field>& row,
                        std::string_view key) {
  const obs::Value* value = field(row, key);
  return value != nullptr && value->is_number() ? value->as_uint() : 0;
}

obs::TraceStream load_stream(const fs::path& path, std::string name) {
  obs::TraceStream stream;
  stream.name = std::move(name);
  std::ifstream in(path);
  obs::parse_ndjson_stream(in, stream.events);
  return stream;
}

TEST(ServeCampaign, TraceStreamsCarryTheFullSpanAncestry) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path dir = fresh_dir("serve_trace");
  fs::create_directories(dir);

  obs::MetricsRegistry metrics;
  obs::SpanBuffer spans;
  obs::NdjsonSink sink(dir / "telemetry.ndjson");
  obs::Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.events = &sink;
  telemetry.spans = &spans;

  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = traced_worker_command(dir);
  options.telemetry = &telemetry;
  const ServeSummary summary = serve_campaign(config, dir, options);
  sink.flush();

  EXPECT_NE(summary.trace_id, 0u);
  EXPECT_EQ(summary.executed, summary.total_runs);

  // Dispatcher stream: one campaign.serve root carrying the trace id, and
  // one serve.lease span per completed lease, all parented by the root.
  const obs::TraceStream dispatcher =
      load_stream(dir / "telemetry.ndjson", "dispatcher");
  std::uint64_t serve_span_id = 0;
  std::set<std::uint64_t> lease_span_ids;
  for (const auto& row : dispatcher.events) {
    if (str_field(row, "event") != "span") continue;
    if (str_field(row, "name") == "campaign.serve") {
      serve_span_id = u64_field(row, "id");
      EXPECT_EQ(u64_field(row, "parent_id"), 0u);
      EXPECT_EQ(u64_field(row, "trace_id"), summary.trace_id);
    }
    if (str_field(row, "name") == "serve.lease") {
      lease_span_ids.insert(u64_field(row, "id"));
    }
  }
  ASSERT_NE(serve_span_id, 0u);
  EXPECT_EQ(lease_span_ids.size(), summary.leases_completed);
  for (const auto& row : dispatcher.events) {
    if (str_field(row, "event") == "span" &&
        str_field(row, "name") == "serve.lease") {
      EXPECT_EQ(u64_field(row, "parent_id"), serve_span_id);
    }
  }

  // The HELLO handshake dates both worker clocks.
  const auto offsets = hello_clock_offsets(dispatcher);
  ASSERT_EQ(offsets.size(), 2u);

  // Worker streams: every worker.lease span is parented by a dispatcher
  // serve.lease span (the wire-propagated id), and every run end event
  // falls inside one of its process's lease windows -- the containment
  // rule the exporter uses to parent synthesized campaign.run spans.
  std::vector<obs::TraceStream> streams = {dispatcher};
  for (std::uint32_t worker_id = 0; worker_id < 2; ++worker_id) {
    obs::TraceStream stream = load_stream(
        dir / ("telemetry-w" + std::to_string(worker_id) + ".ndjson"),
        "w" + std::to_string(worker_id));
    stream.clock_offset_us = offsets.at(worker_id);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lease_windows;
    for (const auto& row : stream.events) {
      if (str_field(row, "event") != "span" ||
          str_field(row, "name") != "worker.lease") {
        continue;
      }
      EXPECT_EQ(lease_span_ids.count(u64_field(row, "parent_id")), 1u)
          << "worker.lease parent must be a dispatcher serve.lease span";
      EXPECT_EQ(u64_field(row, "trace_id"), summary.trace_id);
      const std::uint64_t start = u64_field(row, "start_us");
      lease_windows.emplace_back(start, start + u64_field(row, "dur_us"));
    }
    EXPECT_FALSE(lease_windows.empty());
    std::size_t runs = 0;
    for (const auto& row : stream.events) {
      if (str_field(row, "event") != "campaign.run.end") continue;
      ++runs;
      const std::uint64_t t = u64_field(row, "t_us");
      bool contained = false;
      for (const auto& [begin, end] : lease_windows) {
        contained |= t >= begin && t <= end;
      }
      EXPECT_TRUE(contained) << "run at t_us=" << t << " outside every lease";
    }
    EXPECT_GT(runs, 0u);
    streams.push_back(std::move(stream));
  }

  // The merged export renders every span and synthesizes every run.
  std::ostringstream trace;
  const obs::TraceExportSummary exported =
      obs::write_chrome_trace(trace, streams);
  EXPECT_GE(exported.spans,
            1 + summary.leases_completed * 2);  // root + serve/worker leases
  EXPECT_GE(exported.synthesized, summary.total_runs);
  EXPECT_GT(exported.counter_samples, 0u);
  EXPECT_EQ(trace.str().rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
}

TEST(ServeCampaign, PostmortemFlightRecorderMarksTheCrashedWorker) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  const fs::path dir = fresh_dir("serve_flight");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = traced_worker_command(dir);
  // Kill a worker on its *second* grant: its first lease completed, so its
  // flight ring is guaranteed to hold that lease's span and run events.
  std::map<std::uint32_t, int> grants;
  std::optional<std::uint32_t> killed_worker;
  options.on_grant = [&](const LeaseGrant& grant, std::int64_t pid) {
    if (killed_worker.has_value()) return;
    if (++grants[grant.worker_id] < 2) return;
    killed_worker = grant.worker_id;
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  };
  const ServeSummary summary = serve_campaign(config, dir, options);

  ASSERT_TRUE(killed_worker.has_value());
  EXPECT_EQ(summary.workers_died, 1u);

  for (std::uint32_t worker_id = 0; worker_id < 2; ++worker_id) {
    const auto recording = obs::read_flight_recording(
        dir / ("flight-w" + std::to_string(worker_id) + ".bin"));
    ASSERT_TRUE(recording.has_value()) << "worker " << worker_id;
    EXPECT_EQ(recording->worker_id, worker_id);
    EXPECT_EQ(recording->clean_exit, worker_id != *killed_worker);
    ASSERT_FALSE(recording->lines.empty());
    // Every surviving ring line parses -- the postmortem merge feeds them
    // straight into the trace exporter.
    bool saw_lease_span = false;
    for (const std::string& line : recording->lines) {
      const auto row = obs::parse_flat_json_object(line);
      ASSERT_TRUE(row.has_value()) << line;
      saw_lease_span |= str_field(*row, "event") == "span" &&
                        str_field(*row, "name") == "worker.lease";
    }
    EXPECT_TRUE(saw_lease_span) << "worker " << worker_id;
  }

  // The crash did not cost any runs: the journal still converges.
  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, summary.total_runs);
}

TEST(ServeCampaign, ResumesAPartialJournalWithoutReexecution) {
  const exp::ExperimentScale scale = exp::smoke_scale();
  const fi::CampaignConfig config = exp::make_campaign_config(scale);

  // First serve completes the whole plan; a second serve over the same
  // directory finds nothing left to execute but still converges cleanly.
  const fs::path dir = fresh_dir("serve_resume");
  ServeOptions options;
  options.worker_count = 2;
  options.worker_command = worker_command(dir);
  serve_campaign(config, dir, options);

  const ServeSummary again = serve_campaign(config, dir, options);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.leases_completed, again.leases_granted);
  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, again.total_runs);
  EXPECT_EQ(state.duplicate_count, 0u);

  // Two serve sessions left two lease logs behind.
  EXPECT_EQ(LeaseLogWriter::list_logs(dir).size(), 2u);
}

}  // namespace
}  // namespace propane::svc
