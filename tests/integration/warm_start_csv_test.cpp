// Warm-started campaigns must be invisible in the results: the
// permeability CSV streamed from a journal produced with checkpointed
// warm-start runs must be byte-identical to one produced by cold from-t=0
// runs -- including when the warm campaign is killed partway and resumed
// in a fresh process (whose runner starts with no checkpoints).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "arrestment/model.hpp"
#include "arrestment/testcase.hpp"
#include "arrestment/warm_start.hpp"
#include "store/resume.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

constexpr sim::SimTime kShortRun = 300 * sim::kMillisecond;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;  // run_journaled_campaign creates it
}

fi::CampaignConfig short_config(bool warm_start) {
  fi::SignalBus bus;
  arr::build_bus(bus);
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0x5EED;
  config.threads = 2;
  config.warm_start = warm_start;
  for (const std::string_view target : {"pulscnt", "SetValue", "PACNT"}) {
    const auto id = bus.find(target);
    EXPECT_TRUE(id.has_value());
    config.injections.push_back(
        fi::InjectionSpec{*id, 50 * sim::kMillisecond, fi::bit_flip(2)});
    config.injections.push_back(
        fi::InjectionSpec{*id, 150 * sim::kMillisecond, fi::bit_flip(11)});
  }
  return config;
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);
  std::ostringstream out;
  write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

TEST(WarmStartCsv, WarmJournalStreamsByteIdenticalCsvToCold) {
  const std::vector<arr::TestCase> cases = arr::grid_test_cases(1, 2);

  const fs::path cold_dir = fresh_dir("warm_csv_cold");
  const fi::CampaignConfig cold_config = short_config(/*warm_start=*/false);
  run_journaled_campaign(
      arr::warm_campaign_runner(cases, cold_config, kShortRun), cold_config,
      cold_dir);
  const std::string cold_csv = journal_csv(cold_dir);
  ASSERT_FALSE(cold_csv.empty());

  const fs::path warm_dir = fresh_dir("warm_csv_warm");
  const fi::CampaignConfig warm_config = short_config(/*warm_start=*/true);
  const auto stats = std::make_shared<arr::WarmStartStats>();
  run_journaled_campaign(
      arr::warm_campaign_runner(cases, warm_config, kShortRun, stats),
      warm_config, warm_dir);
  EXPECT_GT(stats->warm_runs.load(), 0u);  // warm path actually exercised
  EXPECT_EQ(journal_csv(warm_dir), cold_csv);
}

TEST(WarmStartCsv, KilledAndResumedWarmCampaignMatchesColdCsv) {
  const std::vector<arr::TestCase> cases = arr::grid_test_cases(1, 2);
  const fi::CampaignConfig config = short_config(/*warm_start=*/true);
  const fs::path dir = fresh_dir("warm_csv_resume");

  // "Kill" partway: a process-split session that owns only half the flat
  // run indices, exactly the journal state a crash leaves behind.
  {
    JournalRunOptions options;
    options.process_count = 2;
    options.process_index = 0;
    const JournalRunSummary partial = run_journaled_campaign(
        arr::warm_campaign_runner(cases, config, kShortRun), config, dir,
        options);
    ASSERT_GT(partial.executed, 0u);
    ASSERT_GT(partial.skipped_foreign, 0u);
  }

  // Resume in a "new process": a fresh runner with empty checkpoint slots
  // re-runs the goldens, rebuilds its checkpoints and finishes the rest.
  const auto stats = std::make_shared<arr::WarmStartStats>();
  const JournalRunSummary resumed = run_journaled_campaign(
      arr::warm_campaign_runner(cases, config, kShortRun, stats), config, dir);
  EXPECT_GT(resumed.executed, 0u);
  EXPECT_GT(resumed.skipped_completed, 0u);
  EXPECT_GT(stats->warm_runs.load(), 0u);

  const fs::path cold_dir = fresh_dir("warm_csv_resume_cold");
  const fi::CampaignConfig cold_config = short_config(/*warm_start=*/false);
  run_journaled_campaign(
      arr::warm_campaign_runner(cases, cold_config, kShortRun), cold_config,
      cold_dir);
  EXPECT_EQ(journal_csv(dir), journal_csv(cold_dir));
}

}  // namespace
}  // namespace propane::store
