// The delta-campaign acceptance property on the real arrestment system:
// an incremental re-run against a full baseline, with one of the six
// modules invalidated, must stream a byte-identical permeability CSV while
// executing at most a third of the runs -- the rest replay from the
// content-addressed cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "arrestment/model.hpp"
#include "arrestment/testcase.hpp"
#include "arrestment/warm_start.hpp"
#include "store/result_cache.hpp"
#include "store/resume.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

constexpr sim::SimTime kShortRun = 300 * sim::kMillisecond;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// All 13 injectable signals x 2 models x 2 instants x 2 test cases = 104
/// runs, the paper's plan shape at smoke scale.
fi::CampaignConfig full_target_config() {
  fi::CampaignConfig config;
  config.test_case_count = 2;
  config.seed = 0x5EED;
  config.threads = 2;
  const std::vector<fi::ErrorModel> models = {fi::bit_flip(2),
                                              fi::bit_flip(11)};
  const std::vector<sim::SimTime> instants = {50 * sim::kMillisecond,
                                              150 * sim::kMillisecond};
  for (const fi::BusSignalId target : arr::injection_target_bus_ids()) {
    const auto plan = fi::cross_product_plan(target, models, instants);
    config.injections.insert(config.injections.end(), plan.begin(),
                             plan.end());
  }
  return config;
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);
  std::ostringstream out;
  write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

TEST(DeltaCampaignCsv, OneInvalidatedModuleReplaysTheRestByteIdentically) {
  const std::vector<arr::TestCase> cases = arr::grid_test_cases(1, 2);
  const fi::CampaignConfig config = full_target_config();
  const core::SystemModel model = arr::make_arrestment_model();
  const fi::SignalBinding binding = arr::make_arrestment_binding(model);

  // Cold baseline through the delta path, so the journal is fingerprinted.
  const fs::path base_dir = fresh_dir("delta_csv_base");
  DeltaRunOptions options;
  options.module_versions = arr::module_version_tokens();
  const DeltaJournalSummary cold = run_delta_journaled_campaign(
      arr::warm_campaign_runner(cases, config, kShortRun), config, model,
      binding, base_dir, ResultCache{}, options);
  EXPECT_EQ(cold.executed, cold.total_runs);
  const std::string cold_csv = journal_csv(base_dir);
  ASSERT_FALSE(cold_csv.empty());

  // Incremental re-run with V_REG "edited" (perturbed version token, same
  // behaviour). Only runs targeting V_REG's inputs may execute.
  const fs::path delta_dir = fresh_dir("delta_csv_incremental");
  options.module_versions =
      arr::module_version_tokens({{"V_REG", 0x5EED5EED5EED5EEDULL}});
  const DeltaJournalSummary delta = run_delta_journaled_campaign(
      arr::warm_campaign_runner(cases, config, kShortRun), config, model,
      binding, delta_dir, ResultCache::load(base_dir), options);

  EXPECT_EQ(delta.executed + delta.replayed, delta.total_runs);
  EXPECT_GT(delta.replayed, 0u);
  // The acceptance bound: at most a third of the runs execute.
  EXPECT_LE(delta.executed * 3, delta.total_runs);
  ASSERT_EQ(delta.invalidated_modules.size(), 1u);
  EXPECT_EQ(model.module_name(delta.invalidated_modules[0]), "V_REG");

  EXPECT_EQ(journal_csv(delta_dir), cold_csv);
}

}  // namespace
}  // namespace propane::store
