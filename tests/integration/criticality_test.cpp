#include "exp/criticality.hpp"

#include <gtest/gtest.h>

namespace propane::exp {
namespace {

class CriticalityTest : public ::testing::Test {
 protected:
  static const CriticalityStudy& study() {
    static const CriticalityStudy s = run_criticality_study(smoke_scale());
    return s;
  }
};

TEST_F(CriticalityTest, ClassifiesEveryRunExactlyOnce) {
  const auto& s = study();
  // 13 targets x 4 models x 2 instants x 1 case.
  EXPECT_EQ(s.total_runs, 104u);
  std::size_t classified = 0;
  for (const auto& entry : s.signals) {
    EXPECT_EQ(entry.benign + entry.degraded + entry.failures,
              entry.injections);
    classified += entry.injections;
  }
  EXPECT_EQ(classified, s.total_runs);
}

TEST_F(CriticalityTest, OneEntryPerInjectedSignal) {
  EXPECT_EQ(study().signals.size(), 13u);
}

TEST_F(CriticalityTest, SortedByFailureThenEffect) {
  const auto& s = study();
  for (std::size_t i = 1; i < s.signals.size(); ++i) {
    const auto& prev = s.signals[i - 1];
    const auto& here = s.signals[i];
    EXPECT_GE(prev.failure_probability() + 1e-12,
              here.failure_probability());
    if (prev.failure_probability() == here.failure_probability()) {
      EXPECT_GE(prev.effect_probability() + 1e-12,
                here.effect_probability());
    }
  }
}

TEST_F(CriticalityTest, OverwrittenRegistersAreBenign) {
  // TCNT/ADC corruption is erased by the environment before the software
  // reads it: those injections must classify as benign.
  for (const auto& entry : study().signals) {
    if (entry.signal == "TCNT" || entry.signal == "ADC") {
      EXPECT_EQ(entry.benign, entry.injections) << entry.signal;
    }
    if (entry.signal == "SetValue") {
      EXPECT_GT(entry.degraded + entry.failures, 0u);
    }
  }
}

TEST_F(CriticalityTest, TableHasOneRowPerSignal) {
  const TextTable table = criticality_table(study());
  EXPECT_EQ(table.row_count(), study().signals.size());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("P(failure)"), std::string::npos);
}

TEST_F(CriticalityTest, ProbabilitiesAreConsistent) {
  for (const auto& entry : study().signals) {
    EXPECT_GE(entry.effect_probability(),
              entry.failure_probability() - 1e-12);
    EXPECT_LE(entry.effect_probability(), 1.0);
  }
}

}  // namespace
}  // namespace propane::exp
