// Cross-module integration: campaign statistics, uniformity analysis, and
// rendering on the real target system at a very small scale.
#include <gtest/gtest.h>

#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "core/ascii_tree.hpp"
#include "core/dot.hpp"
#include "exp/paper_experiment.hpp"
#include "fi/estimator.hpp"

namespace propane {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static const exp::PaperExperiment& experiment() {
    static const exp::PaperExperiment e =
        exp::run_paper_experiment(exp::smoke_scale());
    return e;
  }
};

TEST_F(EndToEndTest, LocationPropagationCoversEveryTargetModelPair) {
  const auto& e = experiment();
  const auto stats = fi::location_propagation_stats(e.model, e.binding,
                                                    e.campaign);
  // 13 targets x 4 models.
  EXPECT_EQ(stats.size(), 13u * 4u);
  for (const auto& loc : stats) {
    EXPECT_EQ(loc.injections, 2u);  // 2 instants x 1 test case
    EXPECT_LE(loc.propagated, loc.injections);
    EXPECT_GE(loc.fraction(), 0.0);
    EXPECT_LE(loc.fraction(), 1.0);
  }
}

TEST_F(EndToEndTest, NonUniformPropagationExists) {
  // The paper: "Our findings do not corroborate this assertion of uniform
  // propagation" [12]. At least one location must have a fraction strictly
  // between 0 and 1 once enough locations are sampled; at smoke scale we
  // settle for fractions not all being 0/1 *or* differing across locations
  // of the same signal.
  const auto& e = experiment();
  const auto stats = fi::location_propagation_stats(e.model, e.binding,
                                                    e.campaign);
  std::set<std::string> fractions_by_signal;
  for (const auto& loc : stats) {
    fractions_by_signal.insert(loc.signal_name + ":" +
                               std::to_string(loc.fraction()));
  }
  // More distinct (signal, fraction) combinations than signals means the
  // propagation fraction depends on the error model -- non-uniformity.
  EXPECT_GT(fractions_by_signal.size(), 13u);
}

TEST_F(EndToEndTest, WilsonIntervalsCoverEstimates) {
  const auto& e = experiment();
  for (const auto& pair : e.estimation.pairs) {
    const auto ci = pair.confidence();
    EXPECT_LE(ci.lo, pair.permeability() + 1e-12);
    EXPECT_GE(ci.hi, pair.permeability() - 1e-12);
  }
}

TEST_F(EndToEndTest, DotExportsRenderForTheRealSystem) {
  const auto& e = experiment();
  const std::string model_dot = core::to_dot(e.model);
  EXPECT_NE(model_dot.find("CALC"), std::string::npos);
  const std::string graph_dot = core::to_dot(e.model, e.report.graph);
  EXPECT_NE(graph_dot.find("SetValue"), std::string::npos);
  const std::string tree_dot =
      core::to_dot(e.model, e.report.backtrack_trees[0], "Fig. 10");
  EXPECT_NE(tree_dot.find("Fig. 10"), std::string::npos);
}

TEST_F(EndToEndTest, AsciiTreesShowPaperSignals) {
  const auto& e = experiment();
  const std::string tree =
      core::render_ascii_tree(e.model, e.report.backtrack_trees[0]);
  EXPECT_EQ(tree.substr(0, 4), "TOC2");
  EXPECT_NE(tree.find("SetValue"), std::string::npos);
  EXPECT_NE(tree.find("[feedback ==]"), std::string::npos);
}

TEST_F(EndToEndTest, EstimatedPermeabilitiesAreValidProbabilities) {
  const auto& e = experiment();
  for (const auto& pair : e.estimation.pairs) {
    EXPECT_GE(pair.permeability(), 0.0);
    EXPECT_LE(pair.permeability(), 1.0);
    EXPECT_LE(pair.errors, pair.injections);
  }
}

TEST_F(EndToEndTest, PlacementAdviceIsPopulatedForTheRealSystem) {
  const auto& advice = experiment().report.placement;
  EXPECT_FALSE(advice.edm_modules.empty());
  EXPECT_FALSE(advice.edm_signals.empty());
  EXPECT_FALSE(advice.erm_modules.empty());
  EXPECT_EQ(advice.barrier_modules.size(), 2u);  // DIST_S and PRES_S (OB6)
  EXPECT_FALSE(advice.input_reach_signals.empty());
  // OB4: pulscnt is the signal most likely affected by system-input
  // errors.
  EXPECT_EQ(advice.input_reach_signals[0].target_name, "pulscnt");
}

}  // namespace
}  // namespace propane
