// Integration test: the full Section 7/8 pipeline at smoke scale --
// campaign, estimation, analysis -- asserting the *shape* results the paper
// reports (OB1-OB6), which are scale-robust.
#include "exp/paper_experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "fi/campaign_io.hpp"

namespace propane::exp {
namespace {

class PaperExperimentTest : public ::testing::Test {
 protected:
  static const PaperExperiment& experiment() {
    static const PaperExperiment exp = run_paper_experiment(smoke_scale());
    return exp;
  }

  static double pair_value(const char* module, const char* input,
                           const char* output) {
    const auto& exp = experiment();
    const auto m = *exp.model.find_module(module);
    return exp.estimation.permeability.get(m, *exp.model.find_input(m, input),
                                           *exp.model.find_output(m, output));
  }
};

TEST_F(PaperExperimentTest, CampaignCoversPlan) {
  const auto& exp = experiment();
  // 13 targets x 4 models x 2 instants x 1 test case.
  EXPECT_EQ(exp.config.injections.size(), 13u * 4u * 2u);
  EXPECT_EQ(exp.campaign.records.size(), exp.config.injections.size());
  EXPECT_EQ(exp.campaign.goldens.size(), 1u);
}

TEST_F(PaperExperimentTest, EveryInjectedPairHasTheSameSampleSize) {
  const auto& exp = experiment();
  for (const auto& pair : exp.estimation.pairs) {
    EXPECT_EQ(pair.injections, 8u) << pair.input_name;  // 4 models x 2 times
  }
}

TEST_F(PaperExperimentTest, ClockFeedbackPairMatchesPaper) {
  // Paper Table 2: CLOCK has P = 0.500, P~ = 1.000 -- the slot feedback is
  // fully permeable, the mscnt pair fully opaque.
  EXPECT_DOUBLE_EQ(pair_value("CLOCK", "ms_slot_nbr", "ms_slot_nbr"), 1.0);
  EXPECT_DOUBLE_EQ(pair_value("CLOCK", "ms_slot_nbr", "mscnt"), 0.0);
}

TEST_F(PaperExperimentTest, StoppedOutputIsNonPermeable) {
  // OB2: "permeability estimates for errors going from the inputs of
  // DIST_S to its output stopped are all zero".
  EXPECT_DOUBLE_EQ(pair_value("DIST_S", "PACNT", "stopped"), 0.0);
  EXPECT_DOUBLE_EQ(pair_value("DIST_S", "TIC1", "stopped"), 0.0);
  EXPECT_DOUBLE_EQ(pair_value("DIST_S", "TCNT", "stopped"), 0.0);
}

TEST_F(PaperExperimentTest, PresSIsNonPermeable) {
  // OB3: "The permeability of PRES_S (which has only one input/output
  // pair) is also zero" -- the ADC register is refreshed by the
  // environment before the software reads it.
  EXPECT_DOUBLE_EQ(pair_value("PRES_S", "ADC", "InValue"), 0.0);
}

TEST_F(PaperExperimentTest, InValueToOutValueIsHighlyPermeable) {
  // OB3's contrast: high permeability (paper: 0.920) on a signal with very
  // low exposure.
  EXPECT_GT(pair_value("V_REG", "InValue", "OutValue"), 0.5);
}

TEST_F(PaperExperimentTest, ExternallyFedModulesHaveNoExposure) {
  // OB1: DIST_S and PRES_S have no error exposure values.
  const auto& exp = experiment();
  for (const auto& m : exp.report.modules) {
    if (m.name == "DIST_S" || m.name == "PRES_S") {
      EXPECT_TRUE(std::isnan(m.exposure)) << m.name;
      EXPECT_EQ(m.incoming_arcs, 0u);
    } else {
      EXPECT_GT(m.incoming_arcs, 0u) << m.name;
    }
  }
}

TEST_F(PaperExperimentTest, CalcHasTheHighestNonweightedExposure) {
  // OB1: "The modules with the highest non-weighted error exposure are the
  // CALC module and the V_REG module."
  const auto& exp = experiment();
  double calc = 0, best_other = 0;
  std::string best_name;
  for (const auto& m : exp.report.modules) {
    if (m.name == "CALC") {
      calc = m.nonweighted_exposure;
    } else if (m.incoming_arcs > 0 &&
               m.nonweighted_exposure > best_other) {
      best_other = m.nonweighted_exposure;
      best_name = m.name;
    }
  }
  EXPECT_GT(calc, best_other) << "runner-up: " << best_name;
}

TEST_F(PaperExperimentTest, SetValueAndOutValueOnEveryNonzeroPath) {
  // OB5: "SetValue and OutValue are part of all propagation paths in
  // Table 4" -- they are cut signals.
  const auto& exp = experiment();
  std::set<std::string> cut_names;
  for (const auto& rec : exp.report.placement.cut_signals) {
    cut_names.insert(rec.target_name);
  }
  EXPECT_TRUE(cut_names.contains("SetValue"));
  EXPECT_TRUE(cut_names.contains("OutValue"));
}

TEST_F(PaperExperimentTest, MscntExcludedAsIndependent) {
  // OB4: "We would not select mscnt ... errors will not show up in this
  // signal unless they originate here"; TOC2 excluded as a hardware
  // register.
  const auto& exp = experiment();
  std::set<std::string> excluded;
  for (const auto& ex : exp.report.placement.exclusions) {
    excluded.insert(ex.name);
  }
  EXPECT_TRUE(excluded.contains("mscnt"));
  EXPECT_TRUE(excluded.contains("TOC2"));
}

TEST_F(PaperExperimentTest, TwentyTwoPathsInTheToc2BacktrackTree) {
  const auto& exp = experiment();
  EXPECT_EQ(exp.report.paths.size(), 22u);
  std::size_t nonzero = 0;
  for (const auto& path : exp.report.paths) {
    if (path.weight > 0.0) ++nonzero;
  }
  EXPECT_GT(nonzero, 2u);
  EXPECT_LT(nonzero, 22u);  // some zero-weight paths remain, as in Table 4
}

TEST_F(PaperExperimentTest, Table1RendersOnlyInjectedPairs) {
  const auto& exp = experiment();
  const TextTable table = table1_permeability(exp);
  EXPECT_EQ(table.row_count(), 25u);  // all 25 pairs were injected
}

TEST_F(PaperExperimentTest, ScaleDescriptionsMentionTotals) {
  EXPECT_NE(describe(paper_scale()).find("4000 injections/signal"),
            std::string::npos);
  EXPECT_NE(describe(smoke_scale()).find("8 injections/signal"),
            std::string::npos);
}

TEST_F(PaperExperimentTest, CampaignConfigEnumeratesTheFullPlan) {
  const auto scale = smoke_scale();
  const auto config = make_campaign_config(scale);
  // 13 targets x (4 models x 2 instants).
  EXPECT_EQ(config.injections.size(),
            13u * scale.models.size() * scale.instants.size());
  // Every target appears with the full model x instant block.
  std::map<fi::BusSignalId, std::size_t> per_target;
  for (const auto& spec : config.injections) ++per_target[spec.target];
  EXPECT_EQ(per_target.size(), 13u);
  for (const auto& [target, count] : per_target) {
    EXPECT_EQ(count, scale.models.size() * scale.instants.size());
  }
}

TEST_F(PaperExperimentTest, PaperScaleMatchesSection73) {
  const auto scale = paper_scale();
  EXPECT_EQ(scale.test_case_count(), 25u);
  EXPECT_EQ(scale.models.size(), 16u);
  EXPECT_EQ(scale.instants.size(), 10u);
  EXPECT_EQ(scale.injections_per_target(), 4000u);  // 16*10*25, Section 7.3
}

TEST_F(PaperExperimentTest, CustomCasesOverrideTheGrid) {
  ExperimentScale scale = smoke_scale();
  scale.custom_cases = {arr::TestCase{9000, 45}, arr::TestCase{19000, 75},
                        arr::TestCase{12000, 55}};
  EXPECT_EQ(scale.test_case_count(), 3u);
}

TEST_F(PaperExperimentTest, CampaignCsvExportsEveryRecord) {
  const auto& exp = experiment();
  std::ostringstream out;
  fi::write_campaign_summary_csv(out, exp.campaign);
  std::size_t lines = 0;
  for (char ch : out.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + exp.campaign.records.size());
}

TEST_F(PaperExperimentTest, ScaleFromEnvSelectsByName) {
  ::setenv("PROPANE_SCALE", "full", 1);
  EXPECT_EQ(scale_from_env().name, "paper");
  ::setenv("PROPANE_SCALE", "small", 1);
  EXPECT_EQ(scale_from_env().name, "smoke");
  ::setenv("PROPANE_SCALE", "bogus", 1);
  EXPECT_EQ(scale_from_env().name, "default");
  ::unsetenv("PROPANE_SCALE");
  EXPECT_EQ(scale_from_env().name, "default");
}

}  // namespace
}  // namespace propane::exp
