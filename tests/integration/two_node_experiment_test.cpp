// Integration: the two-node campaign + estimation + analysis pipeline at
// smoke scale, asserting the distributed-configuration claims of bench E1.
#include <gtest/gtest.h>

#include <set>

#include "arrestment/twonode.hpp"
#include "core/analysis.hpp"
#include "exp/paper_experiment.hpp"

namespace propane {
namespace {

struct TwoNodeFixture {
  core::SystemModel model = arr::make_two_node_model();
  fi::SignalBinding binding = arr::make_two_node_binding(model);
  fi::CampaignResult campaign;
  fi::EstimationResult estimation{core::SystemPermeability(model), {}};
  core::AnalysisReport report;

  TwoNodeFixture()
      : campaign(run()),
        estimation(fi::estimate_permeability(model, binding, campaign)),
        report(core::analyze(model, estimation.permeability)) {}

 private:
  fi::CampaignResult run() {
    const auto scale = exp::smoke_scale();
    const auto cases =
        arr::grid_test_cases(scale.mass_count, scale.velocity_count);
    fi::CampaignConfig config;
    config.test_case_count = static_cast<std::uint32_t>(cases.size());
    for (fi::BusSignalId target : arr::two_node_injection_targets()) {
      const auto plan =
          fi::cross_product_plan(target, scale.models, scale.instants);
      config.injections.insert(config.injections.end(), plan.begin(),
                               plan.end());
    }
    return fi::run_campaign(
        arr::two_node_campaign_runner(cases, scale.duration), config);
  }
};

class TwoNodeExperiment : public ::testing::Test {
 protected:
  static const TwoNodeFixture& fixture() {
    static const TwoNodeFixture f;
    return f;
  }
};

TEST_F(TwoNodeExperiment, CampaignCoversSeventeenTargets) {
  const auto& f = fixture();
  EXPECT_EQ(f.campaign.records.size(), 17u * 4u * 2u);
  EXPECT_EQ(f.campaign.signal_names.size(), 19u);
}

TEST_F(TwoNodeExperiment, LinkTransferIsFullyPermeable) {
  const auto& f = fixture();
  const auto comm = *f.model.find_module("COMM_TX");
  EXPECT_DOUBLE_EQ(f.estimation.permeability.get(comm, 0, 0), 1.0);
}

TEST_F(TwoNodeExperiment, SetValueIsTheCutSignalAcrossBothOutputs) {
  const auto& f = fixture();
  std::set<std::string> cut;
  for (const auto& rec : f.report.placement.cut_signals) {
    cut.insert(rec.target_name);
  }
  EXPECT_TRUE(cut.contains("SetValue"));
  // OutValue only guards the master output, link only the slave one:
  // neither can be a system-wide cut signal any more.
  EXPECT_FALSE(cut.contains("OutValue"));
  EXPECT_FALSE(cut.contains("link"));
}

TEST_F(TwoNodeExperiment, MasterSideMeasuresMatchSingleNodeStructure) {
  const auto& f = fixture();
  const auto clock = *f.model.find_module("CLOCK");
  EXPECT_DOUBLE_EQ(f.estimation.permeability.relative_permeability(clock),
                   0.5);
  const auto pres_s = *f.model.find_module("PRES_S");
  EXPECT_DOUBLE_EQ(
      f.estimation.permeability.nonweighted_relative_permeability(pres_s),
      0.0);
}

TEST_F(TwoNodeExperiment, SlaveOutputTreeContributesPaths) {
  const auto& f = fixture();
  // 22 (master TOC2) + 22 (slave TOC2_S) ranked paths.
  EXPECT_EQ(f.report.paths.size(), 44u);
  bool slave_path_nonzero = false;
  for (const auto& path : f.report.paths) {
    if (path.weight > 0.0 &&
        path.description.find("TOC2_S") != std::string::npos) {
      slave_path_nonzero = true;
    }
  }
  EXPECT_TRUE(slave_path_nonzero);
}

TEST_F(TwoNodeExperiment, SlaveSensorChannelIsNonPermeableLikeTheMaster) {
  // ADC_S is refreshed by the environment before PRES_S_S reads it, so
  // the slave sensor pair measures 0 exactly like the paper's PRES_S.
  const auto& f = fixture();
  const auto pres_s_s = *f.model.find_module("PRES_S_S");
  EXPECT_DOUBLE_EQ(f.estimation.permeability.get(pres_s_s, 0, 0), 0.0);
}

}  // namespace
}  // namespace propane
