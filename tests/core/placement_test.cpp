#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "core/backtrack_tree.hpp"
#include "core/example_system.hpp"
#include "core/trace_tree.hpp"

namespace propane::core {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : graph_(model_, perm_),
        backtrack_(build_all_backtrack_trees(model_, perm_)),
        trace_(build_all_trace_trees(model_, perm_)) {}

  PlacementAdvice advise(PlacementOptions options = {}) {
    return advise_placement(model_, perm_, graph_, backtrack_, trace_,
                            options);
  }

  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  PermeabilityGraph graph_;
  std::vector<PropagationTree> backtrack_;
  std::vector<PropagationTree> trace_;
};

TEST_F(PlacementTest, EdmModulesRankedByNonweightedExposure) {
  const auto advice = advise();
  // Exposure sums: B=2.0, E=1.25, D=0.8; A and C have none (external only).
  ASSERT_EQ(advice.edm_modules.size(), 3u);
  EXPECT_EQ(advice.edm_modules[0].target_name, "B");
  EXPECT_EQ(advice.edm_modules[1].target_name, "E");
  EXPECT_EQ(advice.edm_modules[2].target_name, "D");
  EXPECT_DOUBLE_EQ(advice.edm_modules[0].score, 2.0);
  EXPECT_EQ(advice.edm_modules[0].mechanism, MechanismKind::kErrorDetection);
  EXPECT_EQ(advice.edm_modules[0].rationale,
            Rationale::kHighModuleExposure);
}

TEST_F(PlacementTest, ExternallyFedModulesNeverEdmCandidates) {
  const auto advice = advise();
  for (const Recommendation& rec : advice.edm_modules) {
    EXPECT_NE(rec.target_name, "A");
    EXPECT_NE(rec.target_name, "C");
  }
}

TEST_F(PlacementTest, EdmSignalsRankedBySignalExposure) {
  const auto advice = advise();
  ASSERT_FALSE(advice.edm_signals.empty());
  EXPECT_EQ(advice.edm_signals[0].target_name, "oe1");  // X^S = 1.5
  EXPECT_DOUBLE_EQ(advice.edm_signals[0].score, 1.5);
  // System inputs are not signal EDM candidates.
  for (const Recommendation& rec : advice.edm_signals) {
    EXPECT_EQ(rec.signal.kind, SourceKind::kModuleOutput);
  }
}

TEST_F(PlacementTest, ErmModulesRankedByNonweightedPermeability) {
  const auto advice = advise();
  ASSERT_EQ(advice.erm_modules.size(), model_.module_count());
  // Sums: B=2.0, E=1.5, A=0.9, D=0.8, C=0.7.
  EXPECT_EQ(advice.erm_modules[0].target_name, "B");
  EXPECT_EQ(advice.erm_modules[1].target_name, "E");
  EXPECT_EQ(advice.erm_modules[2].target_name, "A");
  EXPECT_EQ(advice.erm_modules[3].target_name, "D");
  EXPECT_EQ(advice.erm_modules[4].target_name, "C");
  EXPECT_EQ(advice.erm_modules[0].mechanism, MechanismKind::kErrorRecovery);
}

TEST_F(PlacementTest, CutSignalsAreOnEveryNonzeroPath) {
  const auto advice = advise();
  // In the example, oe1 is excluded (system output register); no other
  // signal lies on all 7 non-zero paths (e3's path bypasses everything).
  EXPECT_TRUE(advice.cut_signals.empty());
}

TEST_F(PlacementTest, CutSignalFoundInChainSystem) {
  // in -> A -> B -> C -> out: B's signal lies on every path.
  SystemModelBuilder builder;
  builder.add_module("A", {"i"}, {"o"});
  builder.add_module("B", {"i"}, {"o"});
  builder.add_module("C", {"i"}, {"o"});
  builder.add_system_input("in");
  builder.connect_system_input("in", "A", "i");
  builder.connect("A", "o", "B", "i");
  builder.connect("B", "o", "C", "i");
  builder.add_system_output("out", "C", "o");
  const SystemModel model = std::move(builder).build();
  SystemPermeability p(model);
  p.set(model, "A", "i", "o", 0.5);
  p.set(model, "B", "i", "o", 0.5);
  p.set(model, "C", "i", "o", 0.5);
  const PermeabilityGraph graph(model, p);
  const auto backtrack = build_all_backtrack_trees(model, p);
  const auto trace = build_all_trace_trees(model, p);
  const auto advice = advise_placement(model, p, graph, backtrack, trace);
  ASSERT_EQ(advice.cut_signals.size(), 2u);  // A.o and B.o
  EXPECT_EQ(advice.cut_signals[0].rationale, Rationale::kOnAllNonzeroPaths);
}

TEST_F(PlacementTest, BarrierModulesAreExternallyFedOnly) {
  const auto advice = advise();
  ASSERT_EQ(advice.barrier_modules.size(), 2u);  // A and C
  EXPECT_EQ(advice.barrier_modules[0].target_name, "A");
  EXPECT_EQ(advice.barrier_modules[1].target_name, "C");
  EXPECT_EQ(advice.barrier_modules[0].rationale, Rationale::kInputBarrier);
}

TEST_F(PlacementTest, InputReachRanksSignalsByTracePrefixWeight) {
  const auto advice = advise();
  ASSERT_FALSE(advice.input_reach_signals.empty());
  // oa1 is reached from IA1 with probability 0.9 -- the strongest reach.
  EXPECT_EQ(advice.input_reach_signals[0].target_name, "oa1");
  EXPECT_DOUBLE_EQ(advice.input_reach_signals[0].score, 0.9);
  // The system output oe1 is excluded from this list.
  for (const Recommendation& rec : advice.input_reach_signals) {
    EXPECT_NE(rec.target_name, "oe1");
  }
}

TEST_F(PlacementTest, ExclusionsFlagSystemOutputRegisters) {
  const auto advice = advise();
  bool oe1_excluded = false;
  for (const Exclusion& ex : advice.exclusions) {
    if (ex.name == "oe1") {
      oe1_excluded = true;
      EXPECT_NE(ex.reason.find("hardware register"), std::string::npos);
    }
  }
  EXPECT_TRUE(oe1_excluded);
}

TEST_F(PlacementTest, ExclusionsFlagIndependentSignals) {
  // Make oc1 independent: C passes nothing through.
  SystemPermeability perm = make_example_permeability(model_);
  perm.set(model_, "C", "c1", "oc1", 0.0);
  const PermeabilityGraph graph(model_, perm);
  const auto backtrack = build_all_backtrack_trees(model_, perm);
  const auto trace = build_all_trace_trees(model_, perm);
  const auto advice =
      advise_placement(model_, perm, graph, backtrack, trace);
  bool oc1_excluded = false;
  for (const Exclusion& ex : advice.exclusions) {
    if (ex.name == "oc1") {
      oc1_excluded = true;
      EXPECT_NE(ex.reason.find("independent"), std::string::npos);
    }
  }
  EXPECT_TRUE(oc1_excluded);
}

TEST_F(PlacementTest, TopKTruncatesRankedLists) {
  const auto advice = advise({.top_k = 2});
  EXPECT_LE(advice.edm_modules.size(), 2u);
  EXPECT_LE(advice.edm_signals.size(), 2u);
  EXPECT_LE(advice.erm_modules.size(), 2u);
  EXPECT_LE(advice.input_reach_signals.size(), 2u);
}

TEST_F(PlacementTest, ToStringCoversAllEnumerators) {
  EXPECT_STREQ(to_string(MechanismKind::kErrorDetection), "EDM");
  EXPECT_STREQ(to_string(MechanismKind::kErrorRecovery), "ERM");
  EXPECT_STRNE(to_string(Rationale::kHighModuleExposure), "?");
  EXPECT_STRNE(to_string(Rationale::kHighSignalExposure), "?");
  EXPECT_STRNE(to_string(Rationale::kOnAllNonzeroPaths), "?");
  EXPECT_STRNE(to_string(Rationale::kHighPermeability), "?");
  EXPECT_STRNE(to_string(Rationale::kInputBarrier), "?");
  EXPECT_STRNE(to_string(Rationale::kMostReachedFromInputs), "?");
}

}  // namespace
}  // namespace propane::core
