#include "core/report_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/example_system.hpp"

namespace propane::core {
namespace {

class ReportWriterTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  AnalysisReport report_ = analyze(model_, perm_);

  std::string render(const ReportOptions& options = {}) {
    std::ostringstream out;
    write_markdown_report(out, model_, report_, options);
    return out.str();
  }
};

TEST_F(ReportWriterTest, ContainsEverySection) {
  const std::string text = render();
  EXPECT_NE(text.find("# Error propagation analysis"), std::string::npos);
  EXPECT_NE(text.find("## Module measures"), std::string::npos);
  EXPECT_NE(text.find("## Signal error exposures"), std::string::npos);
  EXPECT_NE(text.find("## Ranked propagation paths"), std::string::npos);
  EXPECT_NE(text.find("## Placement advice"), std::string::npos);
  EXPECT_NE(text.find("## Backtrack trees"), std::string::npos);
  EXPECT_NE(text.find("## Trace trees"), std::string::npos);
}

TEST_F(ReportWriterTest, SummaryLineCountsTheSystem) {
  const std::string text = render();
  EXPECT_NE(text.find("5 modules, 3 system inputs, 1 system outputs, 11 "
                      "input/output pairs"),
            std::string::npos);
}

TEST_F(ReportWriterTest, CustomTitle) {
  const std::string text = render({.title = "My system"});
  EXPECT_EQ(text.substr(0, 12), "# My system\n");
}

TEST_F(ReportWriterTest, TreesCanBeOmitted) {
  const std::string text = render({.include_trees = false});
  EXPECT_EQ(text.find("## Backtrack trees"), std::string::npos);
  EXPECT_EQ(text.find("## Trace trees"), std::string::npos);
}

TEST_F(ReportWriterTest, DotAppendixIsOptIn) {
  EXPECT_EQ(render().find("```dot"), std::string::npos);
  const std::string with_dot = render({.include_dot = true});
  EXPECT_NE(with_dot.find("```dot"), std::string::npos);
  EXPECT_NE(with_dot.find("digraph"), std::string::npos);
}

TEST_F(ReportWriterTest, MaxPathsTruncatesTheListing) {
  const std::string text = render({.max_paths = 2});
  EXPECT_NE(text.find("Top 2 of 7 paths"), std::string::npos);
  // Only two data rows in the paths table: rank "| 3" absent.
  EXPECT_EQ(text.find("| 3 |"), std::string::npos);
}

TEST_F(ReportWriterTest, ExclusionsListed) {
  const std::string text = render();
  EXPECT_NE(text.find("advises against instrumenting"), std::string::npos);
  EXPECT_NE(text.find("**oe1**"), std::string::npos);
}

TEST_F(ReportWriterTest, MarkdownTablesArePipeDelimited) {
  const std::string text = render();
  EXPECT_NE(text.find("| Module"), std::string::npos);
  EXPECT_NE(text.find("| Signal"), std::string::npos);
}

}  // namespace
}  // namespace propane::core
