// Property test: any valid SystemModel serialises to the text format and
// parses back to an equivalent model (same modules, ports, wiring).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/model_parser.hpp"
#include "core/system_model.hpp"

namespace propane::core {
namespace {

SystemModel random_model(std::uint64_t seed) {
  Rng rng(seed);
  SystemModelBuilder builder;

  const std::size_t modules = 2 + rng.bounded(5);
  struct Ports {
    std::string name;
    std::size_t outputs;
    std::size_t inputs;
  };
  std::vector<Ports> layout;
  const std::size_t sys_inputs = 1 + rng.bounded(3);
  for (std::size_t s = 0; s < sys_inputs; ++s) {
    builder.add_system_input("ext" + std::to_string(s));
  }
  for (std::size_t m = 0; m < modules; ++m) {
    Ports ports{"Mod" + std::to_string(m), 1 + rng.bounded(3),
                (m == 0) ? 0 : 1 + rng.bounded(3)};
    std::vector<std::string> ins;
    std::vector<std::string> outs;
    for (std::size_t i = 0; i < ports.inputs; ++i) {
      ins.push_back("in" + std::to_string(i));
    }
    for (std::size_t k = 0; k < ports.outputs; ++k) {
      outs.push_back("out" + std::to_string(k));
    }
    builder.add_module(ports.name, ins, outs);
    for (std::size_t i = 0; i < ports.inputs; ++i) {
      if (rng.bernoulli(0.3)) {
        builder.connect_system_input(
            "ext" + std::to_string(rng.bounded(sys_inputs)), ports.name,
            "in" + std::to_string(i));
      } else {
        // Earlier module (or self, producing a feedback loop).
        const auto src = rng.bounded(m + 1);
        const auto& source = src == m ? ports : layout[src];
        builder.connect(source.name,
                        "out" + std::to_string(rng.bounded(source.outputs)),
                        ports.name, "in" + std::to_string(i));
      }
    }
    layout.push_back(ports);
  }
  builder.add_system_output("sysout", layout.back().name, "out0");
  return std::move(builder).build();
}

class ModelRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelRoundTrip, TextFormatRoundTripsExactly) {
  const SystemModel original = random_model(GetParam());
  const SystemModel reparsed = parse_system_model(to_model_text(original));

  ASSERT_EQ(reparsed.module_count(), original.module_count());
  ASSERT_EQ(reparsed.system_input_count(), original.system_input_count());
  ASSERT_EQ(reparsed.system_output_count(),
            original.system_output_count());
  for (ModuleId m = 0; m < original.module_count(); ++m) {
    const ModuleInfo& a = original.module(m);
    const ModuleInfo& b = reparsed.module(m);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.input_names, b.input_names);
    EXPECT_EQ(a.output_names, b.output_names);
    for (PortIndex i = 0; i < a.input_count(); ++i) {
      EXPECT_EQ(original.input_source(InputRef{m, i}),
                reparsed.input_source(InputRef{m, i}));
    }
  }
  for (std::uint32_t o = 0; o < original.system_output_count(); ++o) {
    EXPECT_EQ(original.system_output_source(o),
              reparsed.system_output_source(o));
    EXPECT_EQ(original.system_output_name(o),
              reparsed.system_output_name(o));
  }
  // Serialisation is a fixed point: text(parse(text(m))) == text(m).
  EXPECT_EQ(to_model_text(original), to_model_text(reparsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace propane::core
