#include "core/propagation_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/backtrack_tree.hpp"
#include "core/example_system.hpp"
#include "core/trace_tree.hpp"

namespace propane::core {
namespace {

class PropagationPathTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  PropagationTree backtrack_ = build_backtrack_tree(model_, perm_, 0);
};

TEST_F(PropagationPathTest, SortIsDescendingAndStable) {
  auto paths = backtrack_paths(backtrack_);
  sort_paths_by_weight(paths);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].weight, paths[i].weight);
  }
}

TEST_F(PropagationPathTest, NonzeroPathsFiltersZeros) {
  SystemPermeability sparse(model_);
  sparse.set(model_, "E", "e3", "oe1", 0.25);
  const PropagationTree tree = build_backtrack_tree(model_, sparse, 0);
  auto all = backtrack_paths(tree);
  const auto nonzero = nonzero_paths(all);
  EXPECT_EQ(all.size(), 7u);
  ASSERT_EQ(nonzero.size(), 1u);
  EXPECT_NEAR(nonzero[0].weight, 0.25, 1e-12);
}

TEST_F(PropagationPathTest, PathWeightIsProductOfPermeabilities) {
  // Independent recomputation: multiply only the permeability edges.
  for (const PropagationPath& path : backtrack_paths(backtrack_)) {
    double expected = 1.0;
    for (TreeNodeIndex index : path.nodes) {
      const TreeNode& n = backtrack_.node(index);
      if (n.has_arc) {
        expected *= perm_.get(n.arc.module, n.arc.input, n.arc.output);
      }
    }
    EXPECT_DOUBLE_EQ(path.weight, expected);
  }
}

TEST_F(PropagationPathTest, PathNodesStartAtRoot) {
  for (const PropagationPath& path : backtrack_paths(backtrack_)) {
    ASSERT_FALSE(path.nodes.empty());
    EXPECT_EQ(path.nodes.front(), 0u);
    EXPECT_TRUE(backtrack_.node(path.nodes.back()).is_leaf());
  }
}

TEST_F(PropagationPathTest, PathSignalsContainRootAndTerminalSignals) {
  const auto paths = backtrack_paths(backtrack_);
  const ModuleId e = *model_.find_module("E");
  for (const PropagationPath& path : paths) {
    const auto signals = path_signals(model_, backtrack_, path);
    // Root output signal oe1 is always present.
    EXPECT_NE(std::find(signals.begin(), signals.end(),
                        SignalRef::from_output(OutputRef{e, 0})),
              signals.end());
  }
}

TEST_F(PropagationPathTest, PathSignalsDeduplicates) {
  // The feedback path visits ob1's signal twice (node + driver); the signal
  // list must contain it once.
  auto paths = backtrack_paths(backtrack_);
  for (const PropagationPath& path : paths) {
    auto signals = path_signals(model_, backtrack_, path);
    auto sorted = signals;
    std::sort(sorted.begin(), sorted.end(),
              [](const SignalRef& a, const SignalRef& b) {
                if (a.kind != b.kind) return a.kind < b.kind;
                if (a.kind == SourceKind::kSystemInput) {
                  return a.system_input < b.system_input;
                }
                return a.output < b.output;
              });
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_F(PropagationPathTest, SystemInputAppearsInBoundaryPaths) {
  const auto paths = backtrack_paths(backtrack_);
  for (const PropagationPath& path : paths) {
    const auto signals = path_signals(model_, backtrack_, path);
    const bool has_system_input =
        std::any_of(signals.begin(), signals.end(), [](const SignalRef& s) {
          return s.kind == SourceKind::kSystemInput;
        });
    EXPECT_EQ(has_system_input, !path.ends_in_feedback);
  }
}

TEST_F(PropagationPathTest, TraceAndBacktrackAgreeOnEndToEndWeights) {
  // The full-system paths IA1 ~> OE1 must have the same weight set whether
  // computed forwards (trace tree) or backwards (backtrack tree).
  const PropagationTree trace = build_trace_tree(model_, perm_, 0);
  auto forward = trace_paths(trace);
  sort_paths_by_weight(forward);

  auto backward = backtrack_paths(backtrack_);
  // Keep only paths that terminate at system input IA1.
  std::erase_if(backward, [&](const PropagationPath& p) {
    const TreeNode& leaf = backtrack_.node(p.nodes.back());
    if (!leaf.is_system_input) return true;
    const Source& src = model_.input_source(leaf.input);
    return src.system_input != 0;
  });
  sort_paths_by_weight(backward);

  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_NEAR(forward[i].weight, backward[i].weight, 1e-12);
  }
}

}  // namespace
}  // namespace propane::core
