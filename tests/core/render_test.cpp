#include <gtest/gtest.h>

#include "core/ascii_tree.hpp"
#include "core/backtrack_tree.hpp"
#include "core/dot.hpp"
#include "core/example_system.hpp"
#include "core/trace_tree.hpp"

namespace propane::core {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
};

TEST_F(RenderTest, AsciiBacktrackTreeShowsRootAndWeights) {
  const PropagationTree tree = build_backtrack_tree(model_, perm_, 0);
  const std::string out = render_ascii_tree(model_, tree);
  EXPECT_EQ(out.substr(0, 3), "oe1");
  EXPECT_NE(out.find("=0.750"), std::string::npos);
  EXPECT_NE(out.find("[feedback ==]"), std::string::npos);
  EXPECT_NE(out.find("[system input]"), std::string::npos);
  EXPECT_NE(out.find("`--"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST_F(RenderTest, AsciiTreeArcAnnotations) {
  const PropagationTree tree = build_backtrack_tree(model_, perm_, 0);
  const std::string out =
      render_ascii_tree(model_, tree, {.show_weights = true, .show_arcs = true});
  EXPECT_NE(out.find("P(E: e1->oe1)=0.750"), std::string::npos);
}

TEST_F(RenderTest, AsciiTreeWithoutWeights) {
  const PropagationTree tree = build_backtrack_tree(model_, perm_, 0);
  const std::string out =
      render_ascii_tree(model_, tree, {.show_weights = false});
  EXPECT_EQ(out.find("=0."), std::string::npos);
}

TEST_F(RenderTest, AsciiTraceTreeShowsSystemBoundaries) {
  const PropagationTree tree = build_trace_tree(model_, perm_, 0);
  const std::string out = render_ascii_tree(model_, tree);
  EXPECT_NE(out.find("IA1  [system input]"), std::string::npos);
  EXPECT_NE(out.find("[system output]"), std::string::npos);
}

TEST_F(RenderTest, DotModelListsModulesAndTerminals) {
  const std::string dot = to_dot(model_);
  EXPECT_EQ(dot.substr(0, 7), "digraph");
  for (ModuleId m = 0; m < model_.module_count(); ++m) {
    EXPECT_NE(dot.find(model_.module_name(m)), std::string::npos);
  }
  EXPECT_NE(dot.find("IA1"), std::string::npos);
  EXPECT_NE(dot.find("OE1"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST_F(RenderTest, DotPermeabilityGraphLabelsArcs) {
  const PermeabilityGraph graph(model_, perm_);
  const std::string dot = to_dot(model_, graph);
  EXPECT_NE(dot.find("b1->ob2 = 0.800"), std::string::npos);
  // External arcs come from plaintext terminal nodes.
  EXPECT_NE(dot.find("ext0"), std::string::npos);
}

TEST_F(RenderTest, DotPermeabilityGraphDashesZeroArcs) {
  SystemPermeability sparse(model_);
  sparse.set(model_, "A", "a1", "oa1", 0.9);
  const PermeabilityGraph graph(model_, sparse);
  const std::string dot = to_dot(model_, graph);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(RenderTest, DotTreeMarksFeedbackEdgesBold) {
  const PropagationTree tree = build_backtrack_tree(model_, perm_, 0);
  const std::string dot = to_dot(model_, tree, "backtrack OE1");
  EXPECT_NE(dot.find("backtrack OE1"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST_F(RenderTest, DotEscapesQuotes) {
  SystemModelBuilder builder;
  builder.add_module("M\"q", {"i"}, {"o"});
  builder.add_system_input("in");
  builder.connect_system_input("in", "M\"q", "i");
  builder.add_system_output("out", "M\"q", "o");
  const SystemModel model = std::move(builder).build();
  const std::string dot = to_dot(model);
  EXPECT_NE(dot.find("M\\\"q"), std::string::npos);
}

}  // namespace
}  // namespace propane::core
