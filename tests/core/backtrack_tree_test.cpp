#include "core/backtrack_tree.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"
#include "core/propagation_path.hpp"

namespace propane::core {
namespace {

class BacktrackTreeTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  PropagationTree tree_ = build_backtrack_tree(model_, perm_, 0);
};

TEST_F(BacktrackTreeTest, RootIsTheSystemOutput) {
  const TreeNode& root = tree_.root();
  EXPECT_EQ(root.kind, TreeNode::Kind::kOutput);
  EXPECT_EQ(root.output, model_.system_output_source(0));
  EXPECT_EQ(root.parent, kNoNode);
}

TEST_F(BacktrackTreeTest, RootHasOneChildPerInputOfE) {
  // Step A2: one child per permeability value of the root output.
  EXPECT_EQ(tree_.root().children.size(), 3u);  // e1, e2, e3
}

TEST_F(BacktrackTreeTest, SevenLeavesSevenPaths) {
  EXPECT_EQ(tree_.leaves().size(), 7u);
  EXPECT_EQ(backtrack_paths(tree_).size(), 7u);
}

TEST_F(BacktrackTreeTest, LeavesAreSystemInputsOrFeedbackBreaks) {
  std::size_t system_inputs = 0;
  std::size_t feedback = 0;
  for (TreeNodeIndex leaf : tree_.leaves()) {
    const TreeNode& n = tree_.node(leaf);
    EXPECT_EQ(n.kind, TreeNode::Kind::kInput);
    if (n.is_system_input) ++system_inputs;
    if (n.feedback_break) ++feedback;
    EXPECT_TRUE(n.is_system_input || n.feedback_break);
  }
  EXPECT_EQ(system_inputs, 5u);  // a1 x3, c1, e3
  EXPECT_EQ(feedback, 2u);       // b2 under each expansion of ob1
}

TEST_F(BacktrackTreeTest, LeftmostPathMatchesSection42Walk) {
  // O^E1 <- I^E1 <- O^B2 <- I^B1 <- O^A1 <- I^A1 with weight
  // P^E_{1,1} * P^B_{1,2} * P^A_{1,1} = 0.75 * 0.8 * 0.9 = 0.54.
  const auto paths = backtrack_paths(tree_);
  const PropagationPath& leftmost = paths.front();
  EXPECT_NEAR(leftmost.weight, 0.54, 1e-12);
  EXPECT_TRUE(leftmost.reaches_system_boundary);
  EXPECT_FALSE(leftmost.ends_in_feedback);
  EXPECT_EQ(format_path(model_, tree_, leftmost),
            "oe1 <- ob2 <- oa1 <- IA1");
}

TEST_F(BacktrackTreeTest, AllPathWeightsMatchHandComputation) {
  auto paths = backtrack_paths(tree_);
  sort_paths_by_weight(paths);
  ASSERT_EQ(paths.size(), 7u);
  EXPECT_NEAR(paths[0].weight, 0.54, 1e-12);   // e1 direct via A
  EXPECT_NEAR(paths[1].weight, 0.25, 1e-12);   // e3 system input
  EXPECT_NEAR(paths[2].weight, 0.21, 1e-12);   // e2 via C
  EXPECT_NEAR(paths[3].weight, 0.135, 1e-12);  // e1 via feedback once, A
  EXPECT_NEAR(paths[4].weight, 0.09, 1e-12);   // e1 feedback break
  EXPECT_NEAR(paths[5].weight, 0.045, 1e-12);  // e2 via B then A
  EXPECT_NEAR(paths[6].weight, 0.03, 1e-12);   // e2 feedback break
}

TEST_F(BacktrackTreeTest, FeedbackLeafHasDriverOnPath) {
  for (TreeNodeIndex leaf : tree_.leaves()) {
    const TreeNode& n = tree_.node(leaf);
    if (!n.feedback_break) continue;
    const Source& driver = model_.input_source(n.input);
    ASSERT_EQ(driver.kind, SourceKind::kModuleOutput);
    // Walk up: the driving output must appear among the ancestors.
    bool found = false;
    for (TreeNodeIndex at = n.parent; at != kNoNode;
         at = tree_.node(at).parent) {
      const TreeNode& anc = tree_.node(at);
      if (anc.kind == TreeNode::Kind::kOutput && anc.output == driver.output) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(BacktrackTreeTest, EveryInputNodeCarriesItsArc) {
  for (const TreeNode& n : tree_.nodes()) {
    if (n.kind != TreeNode::Kind::kInput) continue;
    EXPECT_TRUE(n.has_arc);
    EXPECT_EQ(n.arc.module, n.input.module);
    EXPECT_EQ(n.arc.input, n.input.port);
    EXPECT_DOUBLE_EQ(n.edge_weight,
                     perm_.get(n.arc.module, n.arc.input, n.arc.output));
  }
}

TEST_F(BacktrackTreeTest, OutputNodesCarryWeightOneEdges) {
  for (const TreeNode& n : tree_.nodes()) {
    if (n.kind != TreeNode::Kind::kOutput) continue;
    EXPECT_FALSE(n.has_arc);
    EXPECT_DOUBLE_EQ(n.edge_weight, 1.0);
  }
}

TEST_F(BacktrackTreeTest, PruningZeroEdgesShrinksTree) {
  SystemPermeability sparse(model_);
  // Only the leftmost chain is permeable.
  sparse.set(model_, "E", "e1", "oe1", 0.75);
  sparse.set(model_, "B", "b1", "ob2", 0.8);
  sparse.set(model_, "A", "a1", "oa1", 0.9);
  const PropagationTree full = build_backtrack_tree(model_, sparse, 0);
  const PropagationTree pruned =
      build_backtrack_tree(model_, sparse, 0, {.prune_zero_edges = true});
  EXPECT_GT(full.size(), pruned.size());
  const auto paths = backtrack_paths(pruned);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].weight, 0.54, 1e-12);
}

TEST_F(BacktrackTreeTest, MaxDepthStopsExpansion) {
  const PropagationTree shallow =
      build_backtrack_tree(model_, perm_, 0, {.max_depth = 2});
  EXPECT_LT(shallow.size(), tree_.size());
}

TEST_F(BacktrackTreeTest, InvalidSystemOutputViolatesContract) {
  EXPECT_THROW(build_backtrack_tree(model_, perm_, 7), ContractViolation);
}

TEST_F(BacktrackTreeTest, BuildAllMakesOneTreePerSystemOutput) {
  const auto trees = build_all_backtrack_trees(model_, perm_);
  EXPECT_EQ(trees.size(), model_.system_output_count());
}

TEST_F(BacktrackTreeTest, PathWeightToLeafMatchesPathExtraction) {
  const auto paths = backtrack_paths(tree_);
  for (const PropagationPath& path : paths) {
    EXPECT_DOUBLE_EQ(tree_.path_weight_to(path.nodes.back()), path.weight);
  }
}

TEST_F(BacktrackTreeTest, DepthIncreasesAlongPath) {
  const auto paths = backtrack_paths(tree_);
  for (const PropagationPath& path : paths) {
    for (std::size_t i = 0; i < path.nodes.size(); ++i) {
      EXPECT_EQ(tree_.depth(path.nodes[i]), i);
    }
  }
}

}  // namespace
}  // namespace propane::core
