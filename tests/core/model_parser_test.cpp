#include "core/model_parser.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

constexpr const char* kChainText = R"(
# a three-module chain
module A in a out oa
module B in b out ob
module C in c out oc
input X -> A.a
connect A.oa -> B.b
connect B.ob -> C.c
output OUT <- C.oc
)";

TEST(ModelParser, ParsesAChain) {
  const SystemModel model = parse_system_model(kChainText);
  EXPECT_EQ(model.module_count(), 3u);
  EXPECT_EQ(model.system_input_count(), 1u);
  EXPECT_EQ(model.system_output_count(), 1u);
  const auto b = *model.find_module("B");
  const Source& src = model.input_source(InputRef{b, 0});
  EXPECT_EQ(src.kind, SourceKind::kModuleOutput);
  EXPECT_EQ(src.output.module, *model.find_module("A"));
}

TEST(ModelParser, SourceModuleWithoutInputs) {
  const SystemModel model = parse_system_model(
      "module SRC out s\n"
      "module SINK in i out o\n"
      "connect SRC.s -> SINK.i\n"
      "output O <- SINK.o\n");
  EXPECT_EQ(model.module(*model.find_module("SRC")).input_count(), 0u);
}

TEST(ModelParser, FanOutByRepeatingInputLines) {
  const SystemModel model = parse_system_model(
      "module P in i out o\n"
      "module Q in i out o\n"
      "input X -> P.i\n"
      "input X -> Q.i\n"
      "output OP <- P.o\n"
      "output OQ <- Q.o\n");
  EXPECT_EQ(model.system_input_count(), 1u);
  EXPECT_EQ(model.system_input_consumers(0).size(), 2u);
}

TEST(ModelParser, SelfLoopFeedback) {
  const SystemModel model = parse_system_model(
      "module M in fb out o\n"
      "connect M.o -> M.fb\n"
      "output O <- M.o\n");
  const Source& src = model.input_source(InputRef{0, 0});
  EXPECT_EQ(src.kind, SourceKind::kModuleOutput);
  EXPECT_EQ(src.output.module, 0u);
}

TEST(ModelParser, CommentsAndBlankLinesIgnored) {
  const SystemModel model = parse_system_model(
      "# leading comment\n"
      "\n"
      "module M out o   # trailing comment\n"
      "output O <- M.o\n");
  EXPECT_EQ(model.module_count(), 1u);
}

TEST(ModelParser, RoundTripsThroughToModelText) {
  const SystemModel original = make_example_system();
  const std::string text = to_model_text(original);
  const SystemModel reparsed = parse_system_model(text);
  EXPECT_EQ(reparsed.module_count(), original.module_count());
  EXPECT_EQ(reparsed.system_input_count(), original.system_input_count());
  EXPECT_EQ(reparsed.system_output_count(),
            original.system_output_count());
  EXPECT_EQ(reparsed.io_pair_count(), original.io_pair_count());
  // Wiring identical: every input source matches.
  for (ModuleId m = 0; m < original.module_count(); ++m) {
    for (PortIndex i = 0; i < original.module(m).input_count(); ++i) {
      EXPECT_EQ(original.input_source(InputRef{m, i}),
                reparsed.input_source(InputRef{m, i}));
    }
  }
}

TEST(ModelParser, ErrorsCarryLineNumbers) {
  const auto expect_error_at = [](const char* text, const char* fragment) {
    try {
      parse_system_model(text);
      FAIL() << "expected ContractViolation for: " << text;
    } catch (const ContractViolation& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  expect_error_at("module M out o\nbogus stuff\noutput O <- M.o\n",
                  "line 2");
  expect_error_at("module M in i\noutput O <- M.o\n", "at least one output");
  expect_error_at("module M out o\nconnect M.o > M.i\n", "expected");
  expect_error_at("module M out o\noutput O <- Mo\n", "MODULE.PORT");
  expect_error_at("module M in x out o\nmodule M out o2\n", "duplicate");
}

TEST(ModelParser, DanglingInputRejectedByBuild) {
  EXPECT_THROW(parse_system_model("module M in i out o\noutput O <- M.o\n"),
               ContractViolation);
}

TEST(ModelParser, PortsBeforeKeywordRejected) {
  EXPECT_THROW(parse_system_model("module M stray in i out o\n"),
               ContractViolation);
}

TEST(ModelParser, ArrestmentModelRoundTrip) {
  // The Fig. 8 system survives the text round trip with all 25 pairs.
  const std::string text = to_model_text(make_example_system());
  EXPECT_NE(text.find("module B in b1 b2 out ob1 ob2"), std::string::npos);
}

}  // namespace
}  // namespace propane::core
