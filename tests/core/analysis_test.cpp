#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/example_system.hpp"

namespace propane::core {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  AnalysisReport report_ = analyze(model_, perm_);
};

TEST_F(AnalysisTest, ModuleMeasuresMatchDirectComputation) {
  ASSERT_EQ(report_.modules.size(), model_.module_count());
  for (const ModuleMeasures& m : report_.modules) {
    EXPECT_DOUBLE_EQ(m.relative_permeability,
                     perm_.relative_permeability(m.module));
    EXPECT_DOUBLE_EQ(m.nonweighted_permeability,
                     perm_.nonweighted_relative_permeability(m.module));
  }
  const ModuleMeasures& b = report_.modules[*model_.find_module("B")];
  EXPECT_DOUBLE_EQ(b.nonweighted_exposure, 2.0);
  EXPECT_DOUBLE_EQ(b.exposure, 0.5);
  EXPECT_EQ(b.incoming_arcs, 4u);
  const ModuleMeasures& a = report_.modules[*model_.find_module("A")];
  EXPECT_TRUE(std::isnan(a.exposure));
  EXPECT_EQ(a.incoming_arcs, 0u);
}

TEST_F(AnalysisTest, SignalExposuresSortedDescending) {
  ASSERT_FALSE(report_.signal_exposures.empty());
  for (std::size_t i = 1; i < report_.signal_exposures.size(); ++i) {
    EXPECT_GE(report_.signal_exposures[i - 1].exposure,
              report_.signal_exposures[i].exposure);
  }
}

TEST_F(AnalysisTest, PathsSortedDescendingWithAllTreePaths) {
  EXPECT_EQ(report_.paths.size(), 7u);
  for (std::size_t i = 1; i < report_.paths.size(); ++i) {
    EXPECT_GE(report_.paths[i - 1].weight, report_.paths[i].weight);
  }
  EXPECT_NEAR(report_.paths.front().weight, 0.54, 1e-12);
}

TEST_F(AnalysisTest, TreesBuiltForEveryBoundarySignal) {
  EXPECT_EQ(report_.backtrack_trees.size(), model_.system_output_count());
  EXPECT_EQ(report_.trace_trees.size(), model_.system_input_count());
}

TEST_F(AnalysisTest, ModuleMeasuresTableHasOneRowPerModule) {
  const TextTable table = module_measures_table(report_);
  EXPECT_EQ(table.row_count(), model_.module_count());
  const std::string out = table.render();
  EXPECT_NE(out.find("Module"), std::string::npos);
  // NaN exposure renders as '-' (the paper's empty cells).
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST_F(AnalysisTest, SignalExposureTableSkipsSystemInputs) {
  const TextTable table = signal_exposure_table(report_);
  // 6 module outputs; 3 system inputs skipped.
  EXPECT_EQ(table.row_count(), 6u);
}

TEST_F(AnalysisTest, PathTableFiltersZeroWeights) {
  SystemPermeability sparse(model_);
  sparse.set(model_, "E", "e3", "oe1", 0.25);
  const AnalysisReport report = analyze(model_, sparse);
  const TextTable all = path_table(report, /*nonzero_only=*/false);
  const TextTable nonzero = path_table(report, /*nonzero_only=*/true);
  EXPECT_EQ(all.row_count(), 7u);
  EXPECT_EQ(nonzero.row_count(), 1u);
}

TEST_F(AnalysisTest, PlacementTableContainsAllSections) {
  const TextTable table = placement_table(report_.placement);
  EXPECT_GT(table.row_count(), 0u);
  const std::string out = table.render();
  EXPECT_NE(out.find("EDM"), std::string::npos);
  EXPECT_NE(out.find("ERM"), std::string::npos);
}

TEST_F(AnalysisTest, OptionsPropagate) {
  AnalysisOptions options;
  options.placement.top_k = 1;
  options.trees.prune_zero_edges = true;
  const AnalysisReport report = analyze(model_, perm_, options);
  EXPECT_LE(report.placement.edm_modules.size(), 1u);
}

}  // namespace
}  // namespace propane::core
