#include "core/system_model.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

TEST(SystemModelBuilder, BuildsTheExampleSystem) {
  const SystemModel model = make_example_system();
  EXPECT_EQ(model.module_count(), 5u);
  EXPECT_EQ(model.system_input_count(), 3u);
  EXPECT_EQ(model.system_output_count(), 1u);
}

TEST(SystemModelBuilder, RejectsDuplicateModuleNames) {
  SystemModelBuilder b;
  b.add_module("A", {"i"}, {"o"});
  EXPECT_THROW(b.add_module("A", {"i"}, {"o"}), ContractViolation);
}

TEST(SystemModelBuilder, RejectsDuplicatePortNames) {
  SystemModelBuilder b;
  EXPECT_THROW(b.add_module("A", {"i", "i"}, {"o"}), ContractViolation);
  EXPECT_THROW(b.add_module("B", {"i"}, {"o", "o"}), ContractViolation);
  EXPECT_THROW(b.add_module("C", {""}, {"o"}), ContractViolation);
}

TEST(SystemModelBuilder, RejectsDoubleDrivenInput) {
  SystemModelBuilder b;
  b.add_module("A", {}, {"o1", "o2"});
  b.add_module("B", {"i"}, {"o"});
  b.add_system_input("ext");
  b.connect("A", "o1", "B", "i");
  EXPECT_THROW(b.connect("A", "o2", "B", "i"), ContractViolation);
  EXPECT_THROW(b.connect_system_input("ext", "B", "i"), ContractViolation);
}

TEST(SystemModelBuilder, RejectsUnknownNames) {
  SystemModelBuilder b;
  b.add_module("A", {"i"}, {"o"});
  b.add_system_input("ext");
  EXPECT_THROW(b.connect("NOPE", "o", "A", "i"), ContractViolation);
  EXPECT_THROW(b.connect("A", "nope", "A", "i"), ContractViolation);
  EXPECT_THROW(b.connect("A", "o", "A", "nope"), ContractViolation);
  EXPECT_THROW(b.connect_system_input("nope", "A", "i"), ContractViolation);
  EXPECT_THROW(b.add_system_output("out", "NOPE", "o"), ContractViolation);
}

TEST(SystemModelBuilder, RejectsDanglingInput) {
  SystemModelBuilder b;
  b.add_module("A", {"i"}, {"o"});
  b.add_system_output("out", "A", "o");
  EXPECT_THROW(std::move(b).build(), ContractViolation);
}

TEST(SystemModelBuilder, RejectsSystemWithoutOutputs) {
  SystemModelBuilder b;
  b.add_module("A", {}, {"o"});
  EXPECT_THROW(std::move(b).build(), ContractViolation);
}

TEST(SystemModel, InputSourceResolvesWiring) {
  const SystemModel model = make_example_system();
  const ModuleId b = *model.find_module("B");
  const ModuleId a = *model.find_module("A");

  // b1 is driven by A.oa1.
  const Source& b1 = model.input_source(InputRef{b, 0});
  EXPECT_EQ(b1.kind, SourceKind::kModuleOutput);
  EXPECT_EQ(b1.output.module, a);
  EXPECT_EQ(b1.output.port, 0u);

  // b2 is the local feedback from B.ob1.
  const Source& b2 = model.input_source(InputRef{b, 1});
  EXPECT_EQ(b2.kind, SourceKind::kModuleOutput);
  EXPECT_EQ(b2.output.module, b);
  EXPECT_EQ(b2.output.port, 0u);
}

TEST(SystemModel, SystemInputWiring) {
  const SystemModel model = make_example_system();
  const ModuleId a = *model.find_module("A");
  const Source& a1 = model.input_source(InputRef{a, 0});
  EXPECT_EQ(a1.kind, SourceKind::kSystemInput);
  EXPECT_EQ(model.system_input_name(a1.system_input), "IA1");
  const auto& consumers = model.system_input_consumers(a1.system_input);
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0], (InputRef{a, 0}));
}

TEST(SystemModel, OutputConsumersIncludeFanOut) {
  const SystemModel model = make_example_system();
  const ModuleId b = *model.find_module("B");
  // B.ob1 fans out to B.b2 (feedback) and D.d2.
  const auto& consumers = model.output_consumers(OutputRef{b, 0});
  EXPECT_EQ(consumers.size(), 2u);
}

TEST(SystemModel, SystemOutputSource) {
  const SystemModel model = make_example_system();
  const ModuleId e = *model.find_module("E");
  EXPECT_EQ(model.system_output_source(0).module, e);
  EXPECT_TRUE(model.output_is_system_output(OutputRef{e, 0}));
  const ModuleId a = *model.find_module("A");
  EXPECT_FALSE(model.output_is_system_output(OutputRef{a, 0}));
}

TEST(SystemModel, NameLookupsAndFormatting) {
  const SystemModel model = make_example_system();
  const ModuleId b = *model.find_module("B");
  EXPECT_EQ(model.module_name(b), "B");
  EXPECT_EQ(*model.find_input(b, "b2"), 1u);
  EXPECT_EQ(*model.find_output(b, "ob2"), 1u);
  EXPECT_FALSE(model.find_input(b, "nope").has_value());
  EXPECT_FALSE(model.find_output(b, "nope").has_value());
  EXPECT_FALSE(model.find_module("nope").has_value());
  EXPECT_FALSE(model.find_system_input("nope").has_value());
  EXPECT_EQ(model.input_name(InputRef{b, 1}), "B.b2");
  EXPECT_EQ(model.output_name(OutputRef{b, 1}), "B.ob2");
}

TEST(SystemModel, SignalNames) {
  const SystemModel model = make_example_system();
  EXPECT_EQ(model.signal_name(SignalRef::from_system_input(0)), "IA1");
  const ModuleId b = *model.find_module("B");
  EXPECT_EQ(model.signal_name(SignalRef::from_output(OutputRef{b, 1})),
            "ob2");
}

TEST(SystemModel, IoPairCount) {
  const SystemModel model = make_example_system();
  // A:1*1 + B:2*2 + C:1*1 + D:2*1 + E:3*1 = 11 pairs.
  EXPECT_EQ(model.io_pair_count(), 11u);
}

TEST(SystemModel, AllSignalsEnumeratesInputsThenOutputs) {
  const SystemModel model = make_example_system();
  const auto signals = model.all_signals();
  // 3 system inputs + 6 module outputs (A:1, B:2, C:1, D:1, E:1).
  ASSERT_EQ(signals.size(), 9u);
  EXPECT_EQ(signals[0].kind, SourceKind::kSystemInput);
  EXPECT_EQ(signals[2].kind, SourceKind::kSystemInput);
  EXPECT_EQ(signals[3].kind, SourceKind::kModuleOutput);
  EXPECT_EQ(signals[8].kind, SourceKind::kModuleOutput);
}

TEST(SystemModel, OutOfRangeAccessViolatesContracts) {
  const SystemModel model = make_example_system();
  EXPECT_THROW(model.module(99), ContractViolation);
  EXPECT_THROW(model.system_input_name(99), ContractViolation);
  EXPECT_THROW(model.system_output_name(99), ContractViolation);
  EXPECT_THROW(model.input_source(InputRef{0, 99}), ContractViolation);
}

}  // namespace
}  // namespace propane::core
