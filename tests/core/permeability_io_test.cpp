#include "core/permeability_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

class PermeabilityIoTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
};

TEST_F(PermeabilityIoTest, RoundTripPreservesEveryValue) {
  const SystemPermeability original = make_example_permeability(model_);
  std::stringstream buffer;
  save_permeability_csv(buffer, model_, original);
  const SystemPermeability loaded =
      load_permeability_csv(buffer, model_);
  for (ModuleId m = 0; m < model_.module_count(); ++m) {
    for (PortIndex i = 0; i < model_.module(m).input_count(); ++i) {
      for (PortIndex k = 0; k < model_.module(m).output_count(); ++k) {
        EXPECT_NEAR(loaded.get(m, i, k), original.get(m, i, k), 1e-6);
      }
    }
  }
}

TEST_F(PermeabilityIoTest, SavedCsvHasHeaderAndAllPairs) {
  const SystemPermeability original = make_example_permeability(model_);
  std::stringstream buffer;
  save_permeability_csv(buffer, model_, original);
  const std::string text = buffer.str();
  EXPECT_EQ(text.substr(0, 33), "module,input,output,permeability\n");
  std::size_t lines = 0;
  for (char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + model_.io_pair_count());
}

TEST_F(PermeabilityIoTest, OmittedPairsStayZero) {
  std::istringstream in("module,input,output,permeability\n"
                        "B,b1,ob2,0.8\n");
  const SystemPermeability loaded = load_permeability_csv(in, model_);
  const ModuleId b = *model_.find_module("B");
  EXPECT_DOUBLE_EQ(loaded.get(b, 0, 1), 0.8);
  EXPECT_DOUBLE_EQ(loaded.get(b, 0, 0), 0.0);
}

TEST_F(PermeabilityIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in("# produced by hand\n"
                        "\n"
                        "A,a1,oa1,0.9\n"
                        "  \n"
                        "# trailing comment\n");
  const SystemPermeability loaded = load_permeability_csv(in, model_);
  EXPECT_DOUBLE_EQ(loaded.get(*model_.find_module("A"), 0, 0), 0.9);
}

TEST_F(PermeabilityIoTest, HeaderIsOptional) {
  std::istringstream in("A,a1,oa1,0.5\n");
  const SystemPermeability loaded = load_permeability_csv(in, model_);
  EXPECT_DOUBLE_EQ(loaded.get(*model_.find_module("A"), 0, 0), 0.5);
}

TEST(PermeabilityIoQuoting, QuotedNamesSurviveTheRoundTrip) {
  // Module and port names containing the CSV separator or quotes are
  // escaped on save; the loader must invert that escaping.
  SystemModelBuilder builder;
  builder.add_module("M,1 \"raw\"", {"in,a"}, {"out \"b\""});
  builder.add_system_input("x");
  builder.connect_system_input("x", "M,1 \"raw\"", "in,a");
  builder.add_system_output("y", "M,1 \"raw\"", "out \"b\"");
  const SystemModel model = std::move(builder).build();

  SystemPermeability original(model);
  original.set(0, 0, 0, 0.625);
  std::stringstream buffer;
  save_permeability_csv(buffer, model, original);
  EXPECT_NE(buffer.str().find("\"M,1 \"\"raw\"\"\""), std::string::npos)
      << buffer.str();
  const SystemPermeability loaded = load_permeability_csv(buffer, model);
  EXPECT_DOUBLE_EQ(loaded.get(0, 0, 0), 0.625);
}

TEST(PermeabilityIoQuoting, CommentOptionWritesProvenanceLines) {
  const SystemModel model = make_example_system();
  const SystemPermeability original = make_example_permeability(model);
  PermeabilityCsvOptions options;
  options.comments = {"plan 0xabc, 12 records"};
  std::stringstream buffer;
  save_permeability_csv(buffer, model, original, options);
  EXPECT_EQ(buffer.str().rfind("# plan 0xabc, 12 records\n", 0), 0u);
  // Comments are transparent to the loader.
  const SystemPermeability loaded = load_permeability_csv(buffer, model);
  EXPECT_NEAR(loaded.get(0, 0, 0), original.get(0, 0, 0), 1e-6);
}

TEST_F(PermeabilityIoTest, ErrorsMentionTheLineNumber) {
  std::istringstream in("A,a1,oa1,0.5\nNOPE,a1,oa1,0.5\n");
  try {
    load_permeability_csv(in, model_);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& err) {
    EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos)
        << err.what();
  }
}

TEST_F(PermeabilityIoTest, RejectsMalformedRows) {
  const auto expect_reject = [&](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(load_permeability_csv(in, model_), ContractViolation)
        << text;
  };
  expect_reject("A,a1,oa1\n");                 // too few fields
  expect_reject("A,a1,oa1,0.5,junk\n");        // too many fields
  expect_reject("A,nope,oa1,0.5\n");           // unknown input
  expect_reject("A,a1,nope,0.5\n");            // unknown output
  expect_reject("A,a1,oa1,abc\n");             // unparsable value
  expect_reject("A,a1,oa1,1.5\n");             // out of range
  expect_reject("A,a1,oa1,-0.1\n");            // out of range
}

}  // namespace
}  // namespace propane::core
