// Property-based tests over randomly generated systems: structural and
// numeric invariants of the analysis framework that must hold for *any*
// model, not just the worked examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/backtrack_tree.hpp"
#include "core/example_system.hpp"
#include "core/trace_tree.hpp"

namespace propane::core {
namespace {

struct RandomSystem {
  SystemModel model;
  SystemPermeability permeability;
};

/// Generates a random layered system: modules in layers, inputs drawn from
/// earlier layers or system inputs, optional self-loop feedback, random
/// permeabilities. Guaranteed valid (all inputs driven, >=1 system output).
RandomSystem make_random_system(std::uint64_t seed) {
  Rng rng(seed);
  SystemModelBuilder builder;

  const std::size_t layers = 2 + rng.bounded(3);         // 2..4
  const std::size_t per_layer = 1 + rng.bounded(3);      // 1..3
  const std::size_t n_system_inputs = 1 + rng.bounded(3);

  for (std::size_t s = 0; s < n_system_inputs; ++s) {
    builder.add_system_input("sys_in" + std::to_string(s));
  }

  struct ModulePorts {
    std::string name;
    std::size_t outputs;
  };
  std::vector<std::vector<ModulePorts>> layout(layers);
  std::size_t counter = 0;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t modules_here = (l == layers - 1) ? 1 : per_layer;
    for (std::size_t j = 0; j < modules_here; ++j) {
      ModulePorts ports;
      ports.name = "M" + std::to_string(counter++);
      ports.outputs = 1 + rng.bounded(2);
      const std::size_t inputs = 1 + rng.bounded(3);
      std::vector<std::string> in_names;
      std::vector<std::string> out_names;
      for (std::size_t i = 0; i < inputs; ++i) {
        in_names.push_back(ports.name + "_in" + std::to_string(i));
      }
      for (std::size_t k = 0; k < ports.outputs; ++k) {
        out_names.push_back(ports.name + "_out" + std::to_string(k));
      }
      builder.add_module(ports.name, in_names, out_names);
      layout[l].push_back(ports);

      // Wire the inputs: layer 0 takes system inputs; later layers draw
      // from any earlier layer (or a system input, or a self loop).
      for (std::size_t i = 0; i < inputs; ++i) {
        const std::string in_name = ports.name + "_in" + std::to_string(i);
        const bool use_system = (l == 0) || rng.bernoulli(0.25);
        if (use_system) {
          const auto s = rng.bounded(n_system_inputs);
          builder.connect_system_input("sys_in" + std::to_string(s),
                                       ports.name, in_name);
        } else if (rng.bernoulli(0.2)) {
          // Self loop.
          const auto k = rng.bounded(ports.outputs);
          builder.connect(ports.name, ports.name + "_out" + std::to_string(k),
                          ports.name, in_name);
        } else {
          const auto src_layer = rng.bounded(l);
          const auto& candidates = layout[src_layer];
          const auto& src = candidates[rng.bounded(candidates.size())];
          const auto k = rng.bounded(src.outputs);
          builder.connect(src.name, src.name + "_out" + std::to_string(k),
                          ports.name, in_name);
        }
      }
    }
  }
  const auto& last = layout.back().front();
  builder.add_system_output("sys_out", last.name, last.name + "_out0");

  SystemModel model = std::move(builder).build();
  SystemPermeability permeability(model);
  for (ModuleId m = 0; m < model.module_count(); ++m) {
    for (PortIndex i = 0; i < model.module(m).input_count(); ++i) {
      for (PortIndex k = 0; k < model.module(m).output_count(); ++k) {
        // Mix of zeros and positive values.
        const double p = rng.bernoulli(0.3) ? 0.0 : rng.uniform01();
        permeability.set(m, i, k, p);
      }
    }
  }
  return RandomSystem{std::move(model), std::move(permeability)};
}

class RandomSystemProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomSystemProperty, RelativePermeabilityIsMeanOfNonweighted) {
  const auto sys = make_random_system(GetParam());
  for (ModuleId m = 0; m < sys.model.module_count(); ++m) {
    const auto pairs = sys.model.module(m).input_count() *
                       sys.model.module(m).output_count();
    EXPECT_NEAR(sys.permeability.relative_permeability(m),
                sys.permeability.nonweighted_relative_permeability(m) /
                    static_cast<double>(pairs),
                1e-12);
    EXPECT_GE(sys.permeability.relative_permeability(m), 0.0);
    EXPECT_LE(sys.permeability.relative_permeability(m), 1.0);
    EXPECT_LE(sys.permeability.nonweighted_relative_permeability(m),
              static_cast<double>(pairs));
  }
}

TEST_P(RandomSystemProperty, ExposureBounds) {
  const auto sys = make_random_system(GetParam());
  const PermeabilityGraph graph(sys.model, sys.permeability);
  for (ModuleId m = 0; m < sys.model.module_count(); ++m) {
    const auto n = graph.incoming_arcs(m).size();
    const double x = graph.error_exposure(m);
    if (n == 0) {
      EXPECT_TRUE(std::isnan(x));
    } else {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);  // mean of probabilities
      EXPECT_LE(graph.nonweighted_error_exposure(m),
                static_cast<double>(n) + 1e-12);
    }
  }
}

TEST_P(RandomSystemProperty, BacktrackTreeLeavesAreBoundaries) {
  const auto sys = make_random_system(GetParam());
  const PropagationTree tree =
      build_backtrack_tree(sys.model, sys.permeability, 0);
  for (TreeNodeIndex leaf : tree.leaves()) {
    const TreeNode& n = tree.node(leaf);
    EXPECT_TRUE(n.is_system_input || n.feedback_break);
  }
}

TEST_P(RandomSystemProperty, PathWeightsAreProbabilities) {
  const auto sys = make_random_system(GetParam());
  const PropagationTree tree =
      build_backtrack_tree(sys.model, sys.permeability, 0);
  for (const PropagationPath& path : backtrack_paths(tree)) {
    EXPECT_GE(path.weight, 0.0);
    EXPECT_LE(path.weight, 1.0);
  }
}

TEST_P(RandomSystemProperty, NoOutputEndpointRepeatsOnAnyRootPath) {
  const auto sys = make_random_system(GetParam());
  for (const PropagationTree& tree :
       build_all_trace_trees(sys.model, sys.permeability)) {
    for (TreeNodeIndex i = 0; i < tree.size(); ++i) {
      const TreeNode& node = tree.node(i);
      if (node.kind != TreeNode::Kind::kOutput) continue;
      std::size_t count = 0;
      for (TreeNodeIndex at = i; at != kNoNode; at = tree.node(at).parent) {
        const TreeNode& anc = tree.node(at);
        if (anc.kind == TreeNode::Kind::kOutput &&
            anc.output == node.output) {
          ++count;
        }
      }
      ASSERT_EQ(count, 1u);
    }
  }
}

TEST_P(RandomSystemProperty, SignalExposureBoundedByProducerColumnSum) {
  // X^S sums a subset (deduped) of the permeabilities P^M_{., k} of the
  // producing output; it can never exceed the full column sum.
  const auto sys = make_random_system(GetParam());
  const auto trees = build_all_backtrack_trees(sys.model, sys.permeability);
  for (const SignalExposure& e :
       signal_error_exposures(sys.model, trees)) {
    if (e.signal.kind != SourceKind::kModuleOutput) continue;
    const OutputRef out = e.signal.output;
    double column_sum = 0.0;
    for (PortIndex i = 0; i < sys.model.module(out.module).input_count();
         ++i) {
      column_sum += sys.permeability.get(out.module, i, out.port);
    }
    EXPECT_LE(e.exposure, column_sum + 1e-12);
    EXPECT_GE(e.exposure, 0.0);
  }
}

TEST_P(RandomSystemProperty, AnalyzeRunsEndToEnd) {
  const auto sys = make_random_system(GetParam());
  const AnalysisReport report = analyze(sys.model, sys.permeability);
  EXPECT_EQ(report.modules.size(), sys.model.module_count());
  EXPECT_FALSE(report.paths.empty());
  // Rendering never throws.
  (void)module_measures_table(report);
  (void)signal_exposure_table(report);
  (void)path_table(report, true);
  (void)placement_table(report.placement);
}

TEST_P(RandomSystemProperty, PruningNeverChangesNonzeroPathWeights) {
  const auto sys = make_random_system(GetParam());
  const PropagationTree full =
      build_backtrack_tree(sys.model, sys.permeability, 0);
  const PropagationTree pruned = build_backtrack_tree(
      sys.model, sys.permeability, 0, {.prune_zero_edges = true});
  auto full_paths = nonzero_paths(backtrack_paths(full));
  auto pruned_paths = nonzero_paths(backtrack_paths(pruned));
  sort_paths_by_weight(full_paths);
  sort_paths_by_weight(pruned_paths);
  ASSERT_EQ(full_paths.size(), pruned_paths.size());
  for (std::size_t i = 0; i < full_paths.size(); ++i) {
    EXPECT_NEAR(full_paths[i].weight, pruned_paths[i].weight, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace propane::core
