#include "core/influence.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

class InfluenceTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  InfluenceMatrix matrix_{model_, perm_};

  SignalRef sys_in(const char* name) {
    return SignalRef::from_system_input(*model_.find_system_input(name));
  }
  SignalRef out(const char* module, const char* port) {
    const auto m = *model_.find_module(module);
    return SignalRef::from_output({m, *model_.find_output(m, port)});
  }
};

TEST_F(InfluenceTest, DiagonalIsOne) {
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix_.at(i, i), 1.0);
  }
}

TEST_F(InfluenceTest, DirectEdgeEqualsPermeability) {
  EXPECT_DOUBLE_EQ(matrix_.influence(sys_in("IA1"), out("A", "oa1")), 0.9);
  EXPECT_DOUBLE_EQ(matrix_.influence(out("A", "oa1"), out("B", "ob2")),
                   0.8);
}

TEST_F(InfluenceTest, ChainIsProductOfEdges) {
  // IC1 -> oc1 (0.7) -> od1 (0.6) -> oe1 (0.5) = 0.21.
  EXPECT_NEAR(matrix_.influence(sys_in("IC1"), out("E", "oe1")), 0.21,
              1e-12);
}

TEST_F(InfluenceTest, ParallelRoutesTakeTheMaximum) {
  // IA1 to oe1: direct via ob2 = 0.9*0.8*0.75 = 0.54 beats the feedback
  // and D routes.
  EXPECT_NEAR(matrix_.influence(sys_in("IA1"), out("E", "oe1")), 0.54,
              1e-12);
}

TEST_F(InfluenceTest, FeedbackCycleDoesNotInflateInfluence) {
  // ob1 participates in B's feedback loop; its self-influence stays 1 and
  // influence through the loop stays < 1.
  EXPECT_DOUBLE_EQ(matrix_.influence(out("B", "ob1"), out("B", "ob1")), 1.0);
  // ob1 -> (b2) -> ob2: 0.4.
  EXPECT_NEAR(matrix_.influence(out("B", "ob1"), out("B", "ob2")), 0.4,
              1e-12);
}

TEST_F(InfluenceTest, UnreachablePairsAreZero) {
  // Nothing flows from E's output back to A's output.
  EXPECT_DOUBLE_EQ(matrix_.influence(out("E", "oe1"), out("A", "oa1")), 0.0);
  // System inputs are never influenced.
  EXPECT_DOUBLE_EQ(matrix_.influence(out("A", "oa1"), sys_in("IA1")), 0.0);
}

TEST_F(InfluenceTest, InfluenceIsMonotoneUnderLargerPermeability) {
  SystemPermeability boosted = make_example_permeability(model_);
  boosted.set(model_, "E", "e2", "oe1", 0.9);  // was 0.5
  const InfluenceMatrix more(model_, boosted);
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    for (std::size_t j = 0; j < matrix_.size(); ++j) {
      EXPECT_GE(more.at(i, j) + 1e-12, matrix_.at(i, j));
    }
  }
}

TEST_F(InfluenceTest, MaxSingleRouteNeverExceedsOne) {
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    for (std::size_t j = 0; j < matrix_.size(); ++j) {
      EXPECT_GE(matrix_.at(i, j), 0.0);
      EXPECT_LE(matrix_.at(i, j), 1.0);
    }
  }
}

TEST_F(InfluenceTest, BoundaryTableShapesMatchModel) {
  const TextTable table = matrix_.boundary_table(model_);
  EXPECT_EQ(table.row_count(), model_.system_input_count());
  EXPECT_EQ(table.column_count(), 1 + model_.system_output_count());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("0.540"), std::string::npos);  // IA1 -> OE1
  EXPECT_NE(rendered.find("0.210"), std::string::npos);  // IC1 -> OE1
  EXPECT_NE(rendered.find("0.250"), std::string::npos);  // IE3 -> OE1
}

TEST_F(InfluenceTest, FullTableIsSquarePlusLabels) {
  const TextTable table = matrix_.full_table();
  EXPECT_EQ(table.row_count(), matrix_.size());
  EXPECT_EQ(table.column_count(), 1 + matrix_.size());
}

TEST_F(InfluenceTest, InfluenceAgreesWithStrongestBacktrackPath) {
  // Cross-check against the tree machinery: the max trace-path weight
  // from IA1 equals the influence entry to the output signal.
  EXPECT_NEAR(matrix_.influence(sys_in("IA1"), out("E", "oe1")), 0.54,
              1e-12);
  EXPECT_NEAR(matrix_.influence(sys_in("IE3"), out("E", "oe1")), 0.25,
              1e-12);
}

TEST_F(InfluenceTest, OutOfRangeAccessViolatesContract) {
  EXPECT_THROW(matrix_.at(99, 0), ContractViolation);
}

}  // namespace
}  // namespace propane::core
