#include "core/permeability.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

TEST(SystemPermeability, DefaultsToZero) {
  const SystemModel model = make_example_system();
  const SystemPermeability p(model);
  for (ModuleId m = 0; m < model.module_count(); ++m) {
    for (PortIndex i = 0; i < model.module(m).input_count(); ++i) {
      for (PortIndex k = 0; k < model.module(m).output_count(); ++k) {
        EXPECT_EQ(p.get(m, i, k), 0.0);
      }
    }
  }
}

TEST(SystemPermeability, SetAndGetByIndexAndName) {
  const SystemModel model = make_example_system();
  SystemPermeability p(model);
  const ModuleId b = *model.find_module("B");
  p.set(b, 0, 1, 0.8);
  EXPECT_DOUBLE_EQ(p.get(b, 0, 1), 0.8);
  p.set(model, "B", "b2", "ob1", 0.3);
  EXPECT_DOUBLE_EQ(p.get(b, 1, 0), 0.3);
}

TEST(SystemPermeability, RejectsOutOfRangeProbability) {
  const SystemModel model = make_example_system();
  SystemPermeability p(model);
  EXPECT_THROW(p.set(0, 0, 0, -0.01), ContractViolation);
  EXPECT_THROW(p.set(0, 0, 0, 1.01), ContractViolation);
  EXPECT_NO_THROW(p.set(0, 0, 0, 0.0));
  EXPECT_NO_THROW(p.set(0, 0, 0, 1.0));
}

TEST(SystemPermeability, RejectsBadIndices) {
  const SystemModel model = make_example_system();
  SystemPermeability p(model);
  EXPECT_THROW(p.set(99, 0, 0, 0.5), ContractViolation);
  EXPECT_THROW(p.set(0, 99, 0, 0.5), ContractViolation);
  EXPECT_THROW(p.set(0, 0, 99, 0.5), ContractViolation);
  EXPECT_THROW(p.get(99, 0, 0), ContractViolation);
}

TEST(SystemPermeability, RejectsBadNames) {
  const SystemModel model = make_example_system();
  SystemPermeability p(model);
  EXPECT_THROW(p.set(model, "NOPE", "b1", "ob1", 0.5), ContractViolation);
  EXPECT_THROW(p.set(model, "B", "nope", "ob1", 0.5), ContractViolation);
  EXPECT_THROW(p.set(model, "B", "b1", "nope", 0.5), ContractViolation);
}

TEST(SystemPermeability, RelativePermeabilityEq2) {
  const SystemModel model = make_example_system();
  const SystemPermeability p = make_example_permeability(model);
  const ModuleId b = *model.find_module("B");
  // B: (0.5 + 0.8 + 0.3 + 0.4) / (2*2) = 0.5
  EXPECT_DOUBLE_EQ(p.relative_permeability(b), 0.5);
}

TEST(SystemPermeability, NonweightedRelativePermeabilityEq3) {
  const SystemModel model = make_example_system();
  const SystemPermeability p = make_example_permeability(model);
  const ModuleId b = *model.find_module("B");
  EXPECT_DOUBLE_EQ(p.nonweighted_relative_permeability(b), 2.0);
  const ModuleId e = *model.find_module("E");
  EXPECT_DOUBLE_EQ(p.nonweighted_relative_permeability(e), 1.5);
  EXPECT_DOUBLE_EQ(p.relative_permeability(e), 0.5);
}

TEST(SystemPermeability, PaperSection41HubComparison) {
  // Section 4.1: if two modules have equal non-weighted permeability, the
  // one with fewer pairs has the higher relative permeability (and vice
  // versa). Module G: 1x1 pairs, H: 2x2 pairs, both with sum 0.8.
  SystemModelBuilder builder;
  builder.add_module("G", {"i"}, {"o"});
  builder.add_module("H", {"i1", "i2"}, {"o1", "o2"});
  builder.add_system_input("x1");
  builder.add_system_input("x2");
  builder.add_system_input("x3");
  builder.connect_system_input("x1", "G", "i");
  builder.connect_system_input("x2", "H", "i1");
  builder.connect_system_input("x3", "H", "i2");
  builder.add_system_output("og", "G", "o");
  builder.add_system_output("oh", "H", "o1");
  const SystemModel model = std::move(builder).build();

  SystemPermeability p(model);
  p.set(model, "G", "i", "o", 0.8);
  p.set(model, "H", "i1", "o1", 0.2);
  p.set(model, "H", "i1", "o2", 0.2);
  p.set(model, "H", "i2", "o1", 0.2);
  p.set(model, "H", "i2", "o2", 0.2);

  const ModuleId g = *model.find_module("G");
  const ModuleId h = *model.find_module("H");
  EXPECT_DOUBLE_EQ(p.nonweighted_relative_permeability(g),
                   p.nonweighted_relative_permeability(h));
  EXPECT_GT(p.relative_permeability(g), p.relative_permeability(h));
}

TEST(SystemPermeability, CountsMatchModel) {
  const SystemModel model = make_example_system();
  const SystemPermeability p(model);
  EXPECT_EQ(p.module_count(), model.module_count());
  const ModuleId e = *model.find_module("E");
  EXPECT_EQ(p.input_count(e), 3u);
  EXPECT_EQ(p.output_count(e), 1u);
}

}  // namespace
}  // namespace propane::core
