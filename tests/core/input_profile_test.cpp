#include "core/input_profile.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"
#include "core/trace_tree.hpp"

namespace propane::core {
namespace {

class InputProfileTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  std::vector<PropagationTree> trees_ = build_all_trace_trees(model_, perm_);
};

TEST_F(InputProfileTest, DefaultsToZero) {
  const InputErrorProfile profile(model_);
  for (std::uint32_t i = 0; i < model_.system_input_count(); ++i) {
    EXPECT_DOUBLE_EQ(profile.get(i), 0.0);
  }
}

TEST_F(InputProfileTest, SetByIndexAndName) {
  InputErrorProfile profile(model_);
  profile.set(0, 0.25);
  EXPECT_DOUBLE_EQ(profile.get(0), 0.25);
  profile.set(model_, "IC1", 0.5);
  EXPECT_DOUBLE_EQ(profile.get(1), 0.5);
  profile.set_all(0.1);
  EXPECT_DOUBLE_EQ(profile.get(0), 0.1);
  EXPECT_DOUBLE_EQ(profile.get(2), 0.1);
}

TEST_F(InputProfileTest, RejectsBadArguments) {
  InputErrorProfile profile(model_);
  EXPECT_THROW(profile.set(9, 0.5), ContractViolation);
  EXPECT_THROW(profile.set(0, -0.1), ContractViolation);
  EXPECT_THROW(profile.set(0, 1.1), ContractViolation);
  EXPECT_THROW(profile.set(model_, "nope", 0.5), ContractViolation);
  EXPECT_THROW(profile.get(9), ContractViolation);
}

TEST_F(InputProfileTest, WeightedPathsApplyTheSection42Adjustment) {
  InputErrorProfile profile(model_);
  profile.set(model_, "IA1", 0.5);
  const auto weighted = weighted_trace_paths(model_, trees_, profile);
  // 3 paths from IA1, 1 from IC1, 1 from IE3 = 5 total.
  ASSERT_EQ(weighted.size(), 5u);
  // Top path: IA1 via ob2, conditional 0.54, absolute 0.27.
  EXPECT_EQ(weighted[0].system_input, 0u);
  EXPECT_NEAR(weighted[0].conditional, 0.54, 1e-12);
  EXPECT_NEAR(weighted[0].absolute, 0.27, 1e-12);
  // Other inputs have probability 0: their paths sink to the bottom.
  EXPECT_DOUBLE_EQ(weighted.back().absolute, 0.0);
}

TEST_F(InputProfileTest, WeightedPathsSortedByAbsolute) {
  InputErrorProfile profile(model_);
  profile.set_all(0.1);
  const auto weighted = weighted_trace_paths(model_, trees_, profile);
  for (std::size_t i = 1; i < weighted.size(); ++i) {
    EXPECT_GE(weighted[i - 1].absolute, weighted[i].absolute);
  }
}

TEST_F(InputProfileTest, OutputEstimateBoundsAreOrdered) {
  InputErrorProfile profile(model_);
  profile.set_all(0.2);
  const auto estimates = output_error_estimates(model_, trees_, profile);
  ASSERT_EQ(estimates.size(), 1u);
  const auto& est = estimates[0];
  // max single path <= independent combination <= union bound <= 1.
  EXPECT_GT(est.max_single_path, 0.0);
  EXPECT_LE(est.max_single_path, est.independent + 1e-12);
  EXPECT_LE(est.independent, est.union_bound + 1e-12);
  EXPECT_LE(est.union_bound, 1.0);
}

TEST_F(InputProfileTest, SinglePathHandComputation) {
  // Only IE3 errors: one path with conditional 0.25 and Pr = 0.4.
  InputErrorProfile profile(model_);
  profile.set(model_, "IE3", 0.4);
  const auto estimates = output_error_estimates(model_, trees_, profile);
  EXPECT_NEAR(estimates[0].independent, 0.1, 1e-12);
  EXPECT_NEAR(estimates[0].union_bound, 0.1, 1e-12);
  EXPECT_NEAR(estimates[0].max_single_path, 0.1, 1e-12);
}

TEST_F(InputProfileTest, ZeroProfileGivesZeroEstimates) {
  const InputErrorProfile profile(model_);
  const auto estimates = output_error_estimates(model_, trees_, profile);
  EXPECT_DOUBLE_EQ(estimates[0].independent, 0.0);
  EXPECT_DOUBLE_EQ(estimates[0].union_bound, 0.0);
}

TEST_F(InputProfileTest, MismatchedTreesViolateContract) {
  InputErrorProfile profile(model_);
  std::vector<PropagationTree> wrong;
  wrong.push_back(build_trace_tree(model_, perm_, 1));  // out of order
  wrong.push_back(build_trace_tree(model_, perm_, 0));
  wrong.push_back(build_trace_tree(model_, perm_, 2));
  EXPECT_THROW(weighted_trace_paths(model_, wrong, profile),
               ContractViolation);
}

}  // namespace
}  // namespace propane::core
