#include "core/permeability_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/example_system.hpp"

namespace propane::core {
namespace {

class PermeabilityGraphTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
};

TEST_F(PermeabilityGraphTest, OneArcPerIoPair) {
  const PermeabilityGraph graph(model_, perm_);
  EXPECT_EQ(graph.arcs().size(), model_.io_pair_count());
}

TEST_F(PermeabilityGraphTest, ZeroArcsDroppedWhenRequested) {
  SystemPermeability sparse(model_);
  sparse.set(model_, "A", "a1", "oa1", 0.9);
  const PermeabilityGraph keep(model_, sparse, {.keep_zero_arcs = true});
  const PermeabilityGraph drop(model_, sparse, {.keep_zero_arcs = false});
  EXPECT_EQ(keep.arcs().size(), model_.io_pair_count());
  EXPECT_EQ(drop.arcs().size(), 1u);
}

TEST_F(PermeabilityGraphTest, IncomingArcsOnlyCountInternalSources) {
  const PermeabilityGraph graph(model_, perm_);
  // A and C are fed only by system inputs: no incoming arcs (OB1).
  EXPECT_TRUE(graph.incoming_arcs(*model_.find_module("A")).empty());
  EXPECT_TRUE(graph.incoming_arcs(*model_.find_module("C")).empty());
  // B has 4 incoming arcs: both inputs internal, 2 outputs each.
  EXPECT_EQ(graph.incoming_arcs(*model_.find_module("B")).size(), 4u);
  // E has 2 incoming arcs: e1, e2 internal; e3 is a system input.
  EXPECT_EQ(graph.incoming_arcs(*model_.find_module("E")).size(), 2u);
}

TEST_F(PermeabilityGraphTest, ExposureEq4IsMeanOfIncomingWeights) {
  const PermeabilityGraph graph(model_, perm_);
  const ModuleId b = *model_.find_module("B");
  EXPECT_DOUBLE_EQ(graph.error_exposure(b), 0.5);  // (0.5+0.8+0.3+0.4)/4
  const ModuleId e = *model_.find_module("E");
  EXPECT_DOUBLE_EQ(graph.error_exposure(e), 0.625);  // (0.75+0.5)/2
  const ModuleId d = *model_.find_module("D");
  EXPECT_DOUBLE_EQ(graph.error_exposure(d), 0.4);  // (0.6+0.2)/2
}

TEST_F(PermeabilityGraphTest, NonweightedExposureEq5IsSum) {
  const PermeabilityGraph graph(model_, perm_);
  EXPECT_DOUBLE_EQ(
      graph.nonweighted_error_exposure(*model_.find_module("B")), 2.0);
  EXPECT_DOUBLE_EQ(
      graph.nonweighted_error_exposure(*model_.find_module("E")), 1.25);
  EXPECT_DOUBLE_EQ(
      graph.nonweighted_error_exposure(*model_.find_module("A")), 0.0);
}

TEST_F(PermeabilityGraphTest, ExposureOfExternallyFedModuleIsNaN) {
  const PermeabilityGraph graph(model_, perm_);
  EXPECT_TRUE(std::isnan(graph.error_exposure(*model_.find_module("A"))));
  EXPECT_TRUE(std::isnan(graph.error_exposure(*model_.find_module("C"))));
}

TEST_F(PermeabilityGraphTest, SelfLoopDetection) {
  const PermeabilityGraph graph(model_, perm_);
  const ModuleId b = *model_.find_module("B");
  std::size_t self_loops = 0;
  for (const PermeabilityArc& arc : graph.arcs()) {
    if (arc.self_loop()) {
      ++self_loops;
      EXPECT_EQ(arc.id.module, b);
      EXPECT_EQ(arc.id.input, 1u);  // b2, the feedback input
    }
  }
  EXPECT_EQ(self_loops, 2u);  // (b2 -> ob1), (b2 -> ob2)
}

TEST_F(PermeabilityGraphTest, ArcWeightsMatchPermeability) {
  const PermeabilityGraph graph(model_, perm_);
  for (const PermeabilityArc& arc : graph.arcs()) {
    EXPECT_DOUBLE_EQ(arc.weight,
                     perm_.get(arc.id.module, arc.id.input, arc.id.output));
  }
}

TEST_F(PermeabilityGraphTest, ArcTailMatchesModelWiring) {
  const PermeabilityGraph graph(model_, perm_);
  for (const PermeabilityArc& arc : graph.arcs()) {
    const Source& src =
        model_.input_source(InputRef{arc.id.module, arc.id.input});
    EXPECT_EQ(arc.tail, src);
  }
}

TEST_F(PermeabilityGraphTest, DroppingZeroArcsChangesMeanExposure) {
  // With zero arcs kept, a module with permeabilities {0.8, 0.0} has mean
  // exposure 0.4; with them dropped, 0.8. Eq. 4's denominator is the arc
  // count, so the option matters and must be documented behaviour.
  SystemModelBuilder builder;
  builder.add_module("SRC", {}, {"s"});
  builder.add_module("M", {"i"}, {"o1", "o2"});
  builder.connect("SRC", "s", "M", "i");
  builder.add_system_output("o", "M", "o1");
  const SystemModel model = std::move(builder).build();
  SystemPermeability p(model);
  p.set(model, "M", "i", "o1", 0.8);

  const ModuleId m = *model.find_module("M");
  const PermeabilityGraph keep(model, p, {.keep_zero_arcs = true});
  const PermeabilityGraph drop(model, p, {.keep_zero_arcs = false});
  EXPECT_DOUBLE_EQ(keep.error_exposure(m), 0.4);
  EXPECT_DOUBLE_EQ(drop.error_exposure(m), 0.8);
  EXPECT_DOUBLE_EQ(keep.nonweighted_error_exposure(m), 0.8);
  EXPECT_DOUBLE_EQ(drop.nonweighted_error_exposure(m), 0.8);
}

}  // namespace
}  // namespace propane::core
