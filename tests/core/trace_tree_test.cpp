#include "core/trace_tree.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/example_system.hpp"
#include "core/propagation_path.hpp"

namespace propane::core {
namespace {

class TraceTreeTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  // System input 0 is IA1 (feeds A.a1).
  PropagationTree tree_ = build_trace_tree(model_, perm_, 0);
};

TEST_F(TraceTreeTest, RootIsTheSystemInputSignal) {
  const TreeNode& root = tree_.root();
  EXPECT_EQ(root.kind, TreeNode::Kind::kSignalRoot);
  EXPECT_EQ(root.system_input, 0u);
}

TEST_F(TraceTreeTest, RootChildIsTheConsumingInput) {
  ASSERT_EQ(tree_.root().children.size(), 1u);
  const TreeNode& child = tree_.node(tree_.root().children[0]);
  EXPECT_EQ(child.kind, TreeNode::Kind::kInput);
  EXPECT_EQ(model_.input_name(child.input), "A.a1");
  EXPECT_DOUBLE_EQ(child.edge_weight, 1.0);
}

TEST_F(TraceTreeTest, ThreePathsReachTheSystemOutput) {
  auto paths = trace_paths(tree_);
  sort_paths_by_weight(paths);
  ASSERT_EQ(paths.size(), 3u);
  // IA1 -> oa1 -> ob2 -> oe1 : 0.9 * 0.8 * 0.75 = 0.54
  EXPECT_NEAR(paths[0].weight, 0.54, 1e-12);
  // IA1 -> oa1 -> ob1 -> (feedback b2) -> ob2 -> oe1 : 0.9*0.5*0.4*0.75
  EXPECT_NEAR(paths[1].weight, 0.135, 1e-12);
  // IA1 -> oa1 -> ob1 -> od1 -> oe1 : 0.9 * 0.5 * 0.2 * 0.5 = 0.045
  EXPECT_NEAR(paths[2].weight, 0.045, 1e-12);
}

TEST_F(TraceTreeTest, PathsEndAtSystemOutputs) {
  for (const PropagationPath& path : trace_paths(tree_)) {
    const TreeNode& terminal = tree_.node(path.nodes.back());
    EXPECT_EQ(terminal.kind, TreeNode::Kind::kOutput);
    EXPECT_TRUE(terminal.is_system_output);
    EXPECT_TRUE(path.reaches_system_boundary);
  }
}

TEST_F(TraceTreeTest, FeedbackFollowedOnceThenOmitted) {
  // After following B's feedback (ob1 -> b2), the expansion of b2 must not
  // contain ob1 again: "we do not have a child node from i that is i
  // itself" (Fig. 12).
  for (TreeNodeIndex n = 0; n < tree_.size(); ++n) {
    const TreeNode& node = tree_.node(static_cast<TreeNodeIndex>(n));
    if (node.kind != TreeNode::Kind::kOutput) continue;
    // Collect output endpoints on the path to the root; no duplicates.
    std::size_t occurrences = 0;
    for (TreeNodeIndex at = static_cast<TreeNodeIndex>(n); at != kNoNode;
         at = tree_.node(at).parent) {
      const TreeNode& anc = tree_.node(at);
      if (anc.kind == TreeNode::Kind::kOutput && anc.output == node.output) {
        ++occurrences;
      }
    }
    EXPECT_EQ(occurrences, 1u) << "output endpoint repeated on a path";
  }
}

TEST_F(TraceTreeTest, FormatPathUsesForwardArrows) {
  auto paths = trace_paths(tree_);
  sort_paths_by_weight(paths);
  EXPECT_EQ(format_path(model_, tree_, paths[0]),
            "IA1 -> oa1 -> ob2 -> oe1");
}

TEST_F(TraceTreeTest, PermeabilityEdgesCarryArcs) {
  for (const TreeNode& n : tree_.nodes()) {
    if (n.kind != TreeNode::Kind::kOutput) continue;
    ASSERT_TRUE(n.has_arc);
    EXPECT_EQ(n.arc.module, n.output.module);
    EXPECT_EQ(n.arc.output, n.output.port);
    EXPECT_DOUBLE_EQ(n.edge_weight,
                     perm_.get(n.arc.module, n.arc.input, n.arc.output));
  }
}

TEST_F(TraceTreeTest, TraceTreeForInputFeedingOutputDirectly) {
  // IE3 feeds E.e3 directly; the only path is IE3 -> oe1 with weight 0.25.
  const PropagationTree tree = build_trace_tree(model_, perm_, 2);
  const auto paths = trace_paths(tree);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].weight, 0.25, 1e-12);
  EXPECT_EQ(format_path(model_, tree, paths[0]), "IE3 -> oe1");
}

TEST_F(TraceTreeTest, TraceTreeForIC1GoesThroughD) {
  const PropagationTree tree = build_trace_tree(model_, perm_, 1);
  auto paths = trace_paths(tree);
  ASSERT_EQ(paths.size(), 1u);
  // IC1 -> oc1 -> od1 -> oe1 : 0.7 * 0.6 * 0.5 = 0.21
  EXPECT_NEAR(paths[0].weight, 0.21, 1e-12);
}

TEST_F(TraceTreeTest, DeadEndsAreMarkedNotReported) {
  // Make E fully non-permeable: every trace path dies before the output.
  SystemPermeability blocked = make_example_permeability(model_);
  blocked.set(model_, "E", "e1", "oe1", 0.0);
  blocked.set(model_, "E", "e2", "oe1", 0.0);
  blocked.set(model_, "E", "e3", "oe1", 0.0);
  const PropagationTree tree =
      build_trace_tree(model_, blocked, 0, {.prune_zero_edges = true});
  EXPECT_TRUE(trace_paths(tree).empty());
  bool has_dead_end = false;
  for (const TreeNode& n : tree.nodes()) {
    has_dead_end = has_dead_end || n.dead_end;
  }
  EXPECT_TRUE(has_dead_end);
}

TEST_F(TraceTreeTest, InvalidSystemInputViolatesContract) {
  EXPECT_THROW(build_trace_tree(model_, perm_, 3), ContractViolation);
}

TEST_F(TraceTreeTest, BuildAllMakesOneTreePerSystemInput) {
  const auto trees = build_all_trace_trees(model_, perm_);
  EXPECT_EQ(trees.size(), model_.system_input_count());
}

TEST_F(TraceTreeTest, ZeroWeightEdgesKeptByDefault) {
  SystemPermeability sparse(model_);  // all zeros
  const PropagationTree tree = build_trace_tree(model_, sparse, 0);
  // Tree still expands structurally; all path weights are zero.
  for (const PropagationPath& path : trace_paths(tree)) {
    EXPECT_DOUBLE_EQ(path.weight, 0.0);
  }
  EXPECT_GT(tree.size(), 1u);
}

}  // namespace
}  // namespace propane::core
