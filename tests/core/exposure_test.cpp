#include "core/exposure.hpp"

#include <gtest/gtest.h>

#include "core/backtrack_tree.hpp"
#include "core/example_system.hpp"

namespace propane::core {
namespace {

class ExposureTest : public ::testing::Test {
 protected:
  double exposure_of(const std::vector<SignalExposure>& exposures,
                     const std::string& name) {
    for (const SignalExposure& e : exposures) {
      if (e.name == name) return e.exposure;
    }
    ADD_FAILURE() << "signal not found: " << name;
    return -1.0;
  }

  SystemModel model_ = make_example_system();
  SystemPermeability perm_ = make_example_permeability(model_);
  std::vector<PropagationTree> trees_ =
      build_all_backtrack_trees(model_, perm_);
};

TEST_F(ExposureTest, HandComputedSignalExposures) {
  const auto exposures = signal_error_exposures(model_, trees_);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "oe1"), 1.5);   // 0.75+0.5+0.25
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "ob2"), 1.2);   // 0.8+0.4
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "ob1"), 0.8);   // 0.5+0.3 deduped
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "oa1"), 0.9);   // deduped x3
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "od1"), 0.8);   // 0.6+0.2
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "oc1"), 0.7);
}

TEST_F(ExposureTest, SystemInputsHaveZeroExposure) {
  const auto exposures = signal_error_exposures(model_, trees_);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "IA1"), 0.0);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "IC1"), 0.0);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "IE3"), 0.0);
}

TEST_F(ExposureTest, ArcSetSizesMatchUniqueArcs) {
  const auto exposures = signal_error_exposures(model_, trees_);
  for (const SignalExposure& e : exposures) {
    if (e.name == "ob1") {
      // ob1 appears at two places in the tree; its arc set still has
      // exactly the two pairs (b1->ob1) and (b2->ob1).
      EXPECT_EQ(e.arc_count, 2u);
      EXPECT_TRUE(e.in_trees);
    }
    if (e.name == "oa1") {
      EXPECT_EQ(e.arc_count, 1u);
    }
  }
}

TEST_F(ExposureTest, SignalAbsentFromTreesIsMarked) {
  // Cut the tree short: make the root module non-permeable and prune, so
  // upstream signals never enter the tree.
  SystemPermeability blocked(model_);
  const auto trees = build_all_backtrack_trees(model_, blocked,
                                               {.prune_zero_edges = true});
  const auto exposures = signal_error_exposures(model_, trees);
  for (const SignalExposure& e : exposures) {
    if (e.name == "oa1" || e.name == "ob1" || e.name == "ob2") {
      EXPECT_FALSE(e.in_trees) << e.name;
      EXPECT_DOUBLE_EQ(e.exposure, 0.0);
    }
    if (e.name == "oe1") {
      EXPECT_TRUE(e.in_trees);  // the root itself
    }
  }
}

TEST_F(ExposureTest, SortExposuresIsDescending) {
  auto exposures = signal_error_exposures(model_, trees_);
  sort_exposures(exposures);
  for (std::size_t i = 1; i < exposures.size(); ++i) {
    EXPECT_GE(exposures[i - 1].exposure, exposures[i].exposure);
  }
  EXPECT_EQ(exposures.front().name, "oe1");
}

TEST_F(ExposureTest, ExposureCountsEachArcOnceAcrossMultipleTrees) {
  // Add a second system output fed by B.ob2 so two backtrack trees both
  // contain B's arcs; dedup must still count each pair once.
  SystemModelBuilder builder;
  builder.add_module("A", {"a1"}, {"oa1"});
  builder.add_module("B", {"b1"}, {"ob1"});
  builder.add_system_input("in");
  builder.connect_system_input("in", "A", "a1");
  builder.connect("A", "oa1", "B", "b1");
  builder.add_system_output("out1", "B", "ob1");
  builder.add_system_output("out2", "B", "ob1");
  const SystemModel model = std::move(builder).build();
  SystemPermeability p(model);
  p.set(model, "A", "a1", "oa1", 0.9);
  p.set(model, "B", "b1", "ob1", 0.5);
  const auto trees = build_all_backtrack_trees(model, p);
  ASSERT_EQ(trees.size(), 2u);
  const auto exposures = signal_error_exposures(model, trees);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "ob1"), 0.5);
  EXPECT_DOUBLE_EQ(exposure_of(exposures, "oa1"), 0.9);
}

}  // namespace
}  // namespace propane::core
