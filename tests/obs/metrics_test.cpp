// MetricsRegistry: concurrent counter sums, histogram bucket boundaries,
// quantile estimation and the JSON snapshot format.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace propane::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same");
  registry.counter("other").add(7);  // force more registry churn
  Counter& b = registry.counter("same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {1.0, 2.0});
  // `le` semantics: a value equal to a bound lands in that bound's bucket.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 2.5}) histogram.observe(v);
  const std::vector<std::uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // two finite bounds + inf
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);      // 2.5
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 7.5);
}

TEST(Histogram, RejectsInvalidBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("duplicate", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Histogram, SameNameMustKeepSameBounds) {
  MetricsRegistry registry;
  Histogram& first = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&registry.histogram("h", {1.0, 2.0}), &first);
}

TEST(Histogram, ConcurrentObservationsKeepExactCountAndSum) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("conc", {10.0, 100.0});
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Integer-valued observations keep the double sum exact regardless
      // of addition order.
      for (std::uint64_t i = 0; i < kPerThread; ++i) histogram.observe(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.sum(),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(histogram.bucket_counts()[0], kThreads * kPerThread);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("q", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) histogram.observe(5.0);   // le 10
  for (int i = 0; i < 10; ++i) histogram.observe(15.0);  // le 20
  const HistogramSnapshot snap = registry.snapshot().histograms.at("q");
  // Median rank sits at the boundary between the two buckets.
  EXPECT_NEAR(snap.quantile(0.5), 10.0, 1.0);
  // 75th percentile interpolates inside (10, 20].
  EXPECT_GT(snap.quantile(0.75), 10.0);
  EXPECT_LE(snap.quantile(0.75), 20.0);
  // Everything beyond the last finite bound clamps to it.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(Snapshot, JsonIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("depth").set(3.0);
  registry.histogram("lat", {1.0}).observe(0.5);
  const std::string json = metrics_snapshot_to_json(registry.snapshot());
  // Map-ordered: "a.count" serialises before "b.count".
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json, metrics_snapshot_to_json(registry.snapshot()));
}

}  // namespace
}  // namespace propane::obs
