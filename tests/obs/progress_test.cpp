// ProgressReporter: snapshot arithmetic, HUD line content, TTY gating and
// idempotent finish. Rendering goes to a tmpfile, never a real terminal.
#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace propane::obs {
namespace {

class TempStream {
 public:
  TempStream() : file_(std::tmpfile()) {}
  ~TempStream() {
    if (file_ != nullptr) std::fclose(file_);
  }
  std::FILE* get() { return file_; }

  std::string contents() {
    std::string text;
    std::fflush(file_);
    std::rewind(file_);
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file_)) > 0) {
      text.append(buffer, n);
    }
    return text;
  }

 private:
  std::FILE* file_ = nullptr;
};

TEST(Progress, DisabledWhenOutputIsNotATty) {
  TempStream out;
  ProgressReporter::Options options;
  options.out = out.get();
  ProgressReporter hud(options);
  EXPECT_FALSE(hud.enabled());
  hud.add_completed(1, false);
  hud.finish();
  EXPECT_TRUE(out.contents().empty());  // nothing rendered
}

TEST(Progress, SnapshotTracksCountsAndRates) {
  TempStream out;
  ProgressReporter::Options options;
  options.out = out.get();
  options.total_runs = 100;
  ProgressReporter hud(options);
  hud.add_completed(3, true);
  hud.add_completed(1, false);
  hud.add_skipped(6);
  hud.set_journal(2048, 4);

  // Let the steady clock tick so elapsed/rate/ETA are strictly positive.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const ProgressReporter::Snapshot snap = hud.snapshot();
  EXPECT_EQ(snap.completed, 4u);
  EXPECT_EQ(snap.skipped, 6u);
  EXPECT_EQ(snap.diverged, 1u);
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.journal_bytes, 2048u);
  EXPECT_EQ(snap.journal_shards, 4u);
  EXPECT_DOUBLE_EQ(snap.divergence_rate, 0.25);
  EXPECT_GT(snap.elapsed_s, 0.0);
  EXPECT_GT(snap.runs_per_s, 0.0);
  EXPECT_GT(snap.eta_s, 0.0);
}

TEST(Progress, RenderLineShowsTheEssentials) {
  TempStream out;
  ProgressReporter::Options options;
  options.out = out.get();
  options.total_runs = 10;
  ProgressReporter hud(options);
  hud.add_completed(5, true);
  hud.set_journal(1500, 2);
  const std::string line = hud.render_line();
  EXPECT_NE(line.find("[campaign]"), std::string::npos);
  EXPECT_NE(line.find("5/10 runs"), std::string::npos);
  EXPECT_NE(line.find("runs/s"), std::string::npos);
  EXPECT_NE(line.find("div 20.0%"), std::string::npos);
  EXPECT_NE(line.find("1.5 kB"), std::string::npos);
  EXPECT_NE(line.find("2 shards"), std::string::npos);
}

TEST(Progress, ForcedRenderingWritesFramesAndFinalNewline) {
  TempStream out;
  ProgressReporter::Options options;
  options.out = out.get();
  options.total_runs = 2;
  options.force = true;           // tmpfile is not a TTY; force the HUD on
  options.min_interval_us = 0;    // no throttling in the test
  ProgressReporter hud(options);
  EXPECT_TRUE(hud.enabled());
  hud.add_completed(1, false);
  hud.finish();
  hud.finish();  // idempotent
  const std::string text = out.contents();
  EXPECT_NE(text.find("[campaign]"), std::string::npos);
  EXPECT_EQ(text.find("\n"), text.rfind("\n"));  // exactly one newline
}

TEST(Progress, EtaIsUnknownWithoutProgress) {
  TempStream out;
  ProgressReporter::Options options;
  options.out = out.get();
  options.total_runs = 10;
  ProgressReporter hud(options);
  const ProgressReporter::Snapshot snap = hud.snapshot();
  EXPECT_DOUBLE_EQ(snap.eta_s, 0.0);
  EXPECT_NE(hud.render_line().find("ETA --"), std::string::npos);
}

}  // namespace
}  // namespace propane::obs
