// Crash flight recorder: mmap ring round-trip, wraparound, the clean-exit
// flag, oversized-line truncation, and the reader's refusal to trust
// garbage files. Every test works through the public read path
// (read_flight_recording), the same one `campaign trace --postmortem`
// uses.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"

namespace propane::obs {
namespace {

namespace fs = std::filesystem;

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("propane-flight-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::string line_for(int i) {
  return "{\"event\":\"x\",\"n\":" + std::to_string(i) + "}";
}

TEST_F(FlightTest, RoundTripsLinesInEmissionOrder) {
  const fs::path path = dir_ / "flight-w3.bin";
  {
    FlightRecorder recorder(path, 3);
    for (int i = 0; i < 5; ++i) recorder.record_line(line_for(i));
    EXPECT_EQ(recorder.recorded(), 5u);
  }  // destroyed WITHOUT mark_clean_exit: reads back as a crash
  const auto recording = read_flight_recording(path);
  ASSERT_TRUE(recording.has_value());
  EXPECT_EQ(recording->worker_id, 3u);
  EXPECT_FALSE(recording->clean_exit);
  EXPECT_EQ(recording->last_seq, 5u);
  EXPECT_EQ(recording->dropped_slots, 0u);
  ASSERT_EQ(recording->lines.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recording->lines[i], line_for(static_cast<int>(i)));
  }
  EXPECT_NE(recording->pid, 0u);
}

TEST_F(FlightTest, RingKeepsOnlyTheNewestSlotCountLines) {
  const fs::path path = dir_ / "flight-w0.bin";
  {
    FlightRecorder recorder(path, 0, /*slot_count=*/4);
    for (int i = 0; i < 10; ++i) recorder.record_line(line_for(i));
  }
  const auto recording = read_flight_recording(path);
  ASSERT_TRUE(recording.has_value());
  EXPECT_EQ(recording->last_seq, 10u);
  ASSERT_EQ(recording->lines.size(), 4u);
  // Oldest first, and only the final four survive the wrap.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recording->lines[i], line_for(static_cast<int>(6 + i)));
  }
}

TEST_F(FlightTest, MarkCleanExitSetsTheHeaderFlag) {
  const fs::path path = dir_ / "flight-w1.bin";
  {
    FlightRecorder recorder(path, 1);
    recorder.record_line(line_for(0));
    recorder.mark_clean_exit();
  }
  const auto recording = read_flight_recording(path);
  ASSERT_TRUE(recording.has_value());
  EXPECT_TRUE(recording->clean_exit);
}

TEST_F(FlightTest, OversizedLinesAreTruncatedAndDroppedOnRead) {
  const fs::path path = dir_ / "flight-w2.bin";
  {
    FlightRecorder recorder(path, 2, /*slot_count=*/8, /*slot_size=*/64);
    // Payload room is slot_size - 16 = 48 bytes; this JSON line is far
    // longer, so the stored copy is truncated mid-string and cannot parse.
    recorder.record_line("{\"event\":\"big\",\"payload\":\"" +
                         std::string(200, 'z') + "\"}");
    recorder.record_line(line_for(1));
  }
  const auto recording = read_flight_recording(path);
  ASSERT_TRUE(recording.has_value());
  EXPECT_EQ(recording->dropped_slots, 1u);
  ASSERT_EQ(recording->lines.size(), 1u);
  EXPECT_EQ(recording->lines[0], line_for(1));
}

TEST_F(FlightTest, ReaderRejectsMissingShortAndWrongMagicFiles) {
  EXPECT_FALSE(read_flight_recording(dir_ / "absent.bin").has_value());

  const fs::path short_file = dir_ / "short.bin";
  std::ofstream(short_file) << "tiny";
  EXPECT_FALSE(read_flight_recording(short_file).has_value());

  const fs::path bad_magic = dir_ / "bad-magic.bin";
  std::ofstream(bad_magic) << std::string(kFlightHeaderBytes + 512, '\0');
  EXPECT_FALSE(read_flight_recording(bad_magic).has_value());
}

TEST_F(FlightTest, FlightSinkAndTeeSinkMirrorTheNdjsonStream) {
  const fs::path path = dir_ / "flight-w7.bin";
  std::ostringstream ndjson;
  {
    FlightRecorder recorder(path, 7);
    FlightSink flight(recorder);
    NdjsonSink file(ndjson);
    TeeSink tee(&file, &flight);
    Telemetry telemetry;
    telemetry.events = &tee;
    emit_event(&telemetry, "worker.start",
               {{"worker_id", Value(std::uint64_t{7})}});
    tee.flush();
  }
  const auto recording = read_flight_recording(path);
  ASSERT_TRUE(recording.has_value());
  ASSERT_EQ(recording->lines.size(), 1u);
  // The ring stores the very bytes the NDJSON stream got (minus '\n').
  const std::string stream_line =
      ndjson.str().substr(0, ndjson.str().find('\n'));
  EXPECT_EQ(recording->lines[0], stream_line);
  EXPECT_NE(recording->lines[0].find("\"worker.start\""), std::string::npos);
}

}  // namespace
}  // namespace propane::obs
