// Merged Chrome-trace export: torn-line-tolerant stream parsing, HELLO
// clock-offset recovery, and the render pass -- span X events with the
// cross-process parent chain in args, synthesized run/batch spans parented
// by lease containment, counter tracks, instants and metadata rows.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace propane::obs {
namespace {

std::vector<Field> event_row(std::string name,
                             std::vector<Field> extra = {}) {
  std::vector<Field> row = {{"event", Value(std::move(name))}};
  for (Field& field : extra) row.push_back(std::move(field));
  return row;
}

TEST(ParseNdjsonStream, CountsTornLinesInsteadOfFailing) {
  std::istringstream in(
      "{\"event\":\"a\",\"t_us\":1}\n"
      "\n"
      "{\"event\":\"b\",\"t_us\":2}\n"
      "{\"event\":\"torn\",\"t_us\":3");  // killed writer: no closing brace
  std::vector<std::vector<Field>> rows;
  EXPECT_EQ(parse_ndjson_stream(in, rows), 1u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].value.as_string(), "a");
  EXPECT_EQ(rows[1][0].value.as_string(), "b");
}

TEST(HelloClockOffsets, DatesWorkerClocksAgainstTheDispatcher) {
  TraceStream dispatcher;
  dispatcher.events.push_back(event_row(
      "serve.worker.hello", {{"worker_id", Value(std::uint64_t{0})},
                             {"t_us", Value(std::uint64_t{5000})},
                             {"worker_steady_us", Value(std::uint64_t{40})}}));
  dispatcher.events.push_back(event_row(
      "serve.worker.hello", {{"worker_id", Value(std::uint64_t{1})},
                             {"t_us", Value(std::uint64_t{9000})},
                             {"worker_steady_us", Value(std::uint64_t{25})}}));
  // A pre-trace-context hello (no worker_steady_us) contributes nothing.
  dispatcher.events.push_back(event_row(
      "serve.worker.hello", {{"worker_id", Value(std::uint64_t{2})},
                             {"t_us", Value(std::uint64_t{9500})}}));
  const auto offsets = hello_clock_offsets(dispatcher);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets.at(0), 4960);
  EXPECT_EQ(offsets.at(1), 8975);
  EXPECT_EQ(offsets.count(2), 0u);
}

TEST(HelloClockOffsets, ShiftsByTheDispatcherOwnOffset) {
  TraceStream dispatcher;
  dispatcher.clock_offset_us = 100;
  dispatcher.events.push_back(event_row(
      "serve.worker.hello", {{"worker_id", Value(std::uint64_t{0})},
                             {"t_us", Value(std::uint64_t{1000})},
                             {"worker_steady_us", Value(std::uint64_t{10})}}));
  EXPECT_EQ(hello_clock_offsets(dispatcher).at(0), 1090);
}

TEST(WriteChromeTrace, RendersSpansWithTheCrossProcessParentChain) {
  TraceStream worker;
  worker.name = "w0";
  worker.pid = 4242;
  worker.clock_offset_us = 1000;
  worker.events.push_back(event_row(
      "span", {{"name", Value("worker.lease")},
               {"id", Value(std::uint64_t{77})},
               {"parent_id", Value(std::uint64_t{5})},
               {"tid", Value(std::uint64_t{1})},
               {"start_us", Value(std::uint64_t{100})},
               {"dur_us", Value(std::uint64_t{900})},
               {"t_us", Value(std::uint64_t{1000})},
               {"lease_id", Value(std::uint64_t{3})}}));
  std::ostringstream out;
  const TraceExportSummary summary = write_chrome_trace(out, {worker});
  const std::string trace = out.str();

  EXPECT_EQ(summary.spans, 1u);
  EXPECT_EQ(summary.trace_events, 2u);  // process_name M + the X event
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  // Process metadata names the track.
  EXPECT_NE(trace.find("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":4242"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"w0\""), std::string::npos);
  // The span renders as a complete event at the clock-shifted start, with
  // the wire parent and pass-through fields in args.
  EXPECT_NE(trace.find("\"ph\":\"X\",\"name\":\"worker.lease\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"ts\":1100,\"dur\":900"), std::string::npos);
  EXPECT_NE(trace.find("\"span_id\":77"), std::string::npos);
  EXPECT_NE(trace.find("\"parent_span_id\":5"), std::string::npos);
  EXPECT_NE(trace.find("\"lease_id\":3"), std::string::npos);
}

TEST(WriteChromeTrace, ParentsSynthesizedRunsByLeaseContainment) {
  TraceStream worker;
  worker.name = "w1";
  worker.pid = 7;
  worker.events.push_back(event_row(
      "span", {{"name", Value("worker.lease")},
               {"id", Value(std::uint64_t{55})},
               {"start_us", Value(std::uint64_t{1000})},
               {"dur_us", Value(std::uint64_t{4000})}}));
  // Inside the lease window: adopted.
  worker.events.push_back(event_row(
      "campaign.run.end", {{"t_us", Value(std::uint64_t{3000})},
                           {"dur_us", Value(std::uint64_t{100})},
                           {"kind", Value("faulty")}}));
  // Outside any lease: synthesized without a parent.
  worker.events.push_back(event_row(
      "campaign.run.end", {{"t_us", Value(std::uint64_t{9000})},
                           {"dur_us", Value(std::uint64_t{50})}}));
  worker.events.push_back(event_row(
      "campaign.batch.done", {{"t_us", Value(std::uint64_t{4000})},
                              {"dur_us", Value(std::uint64_t{200})},
                              {"lanes", Value(std::uint64_t{16})}}));
  std::ostringstream out;
  const TraceExportSummary summary = write_chrome_trace(out, {worker});
  const std::string trace = out.str();

  EXPECT_EQ(summary.synthesized, 3u);
  // Runs and batches land on their virtual tracks, named via metadata.
  EXPECT_NE(trace.find("\"name\":\"campaign.run\",\"pid\":7,\"tid\":99"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"campaign.batch\",\"pid\":7,\"tid\":98"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"runs\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"batches\""), std::string::npos);
  // The contained run (and batch) carry the lease span as parent; the
  // orphan run must not.
  EXPECT_NE(trace.find("\"ts\":2900,\"dur\":100,\"args\":{\"kind\":\"faulty\","
                       "\"flat\":0,\"parent_span_id\":55}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"parent_span_id\":55}"), std::string::npos);
  const std::size_t orphan = trace.find("\"ts\":8950,\"dur\":50");
  ASSERT_NE(orphan, std::string::npos);
  const std::size_t orphan_end = trace.find('\n', orphan);
  EXPECT_EQ(trace.substr(orphan, orphan_end - orphan).find("parent_span_id"),
            std::string::npos);
}

TEST(WriteChromeTrace, FallsBackToDispatcherLeaseWhenTheWorkerSpanIsLost) {
  // A worker SIGKILLed mid-lease never emits its worker.lease span; its
  // flight-recovered runs must still parent to the dispatcher's
  // serve.lease span, which the dispatcher closes on detecting the death.
  TraceStream dispatcher;
  dispatcher.name = "dispatcher";
  dispatcher.pid = 1;
  dispatcher.events.push_back(event_row(
      "span", {{"name", Value("serve.lease")},
               {"id", Value(std::uint64_t{12})},
               {"start_us", Value(std::uint64_t{1000})},
               {"dur_us", Value(std::uint64_t{8000})}}));
  TraceStream worker;
  worker.name = "w0";
  worker.pid = 2;
  worker.clock_offset_us = 500;  // HELLO-aligned onto dispatcher time
  worker.events.push_back(event_row(
      "campaign.run.end", {{"t_us", Value(std::uint64_t{2000})},
                           {"dur_us", Value(std::uint64_t{100})}}));
  std::ostringstream out;
  write_chrome_trace(out, {dispatcher, worker});
  const std::string trace = out.str();

  // Aligned run ts 2500 falls inside the dispatcher lease [1000, 9000].
  EXPECT_NE(trace.find("\"ts\":2400,\"dur\":100,\"args\":{\"kind\":\"run\","
                       "\"flat\":0,\"parent_span_id\":12}"),
            std::string::npos);
}

TEST(WriteChromeTrace, EmitsCounterTracksAndInstants) {
  TraceStream dispatcher;
  dispatcher.name = "dispatcher";
  dispatcher.pid = 1;
  dispatcher.events.push_back(event_row(
      "serve.lease.grant", {{"t_us", Value(std::uint64_t{100})},
                            {"pending", Value(std::uint64_t{9})}}));
  dispatcher.events.push_back(event_row(
      "serve.partial_estimate",
      {{"t_us", Value(std::uint64_t{200})},
       {"runs_covered", Value(std::uint64_t{64})}}));
  dispatcher.events.push_back(event_row(
      "serve.lease.complete", {{"t_us", Value(std::uint64_t{300})},
                               {"executed", Value(std::uint64_t{50})}}));
  dispatcher.events.push_back(event_row(
      "serve.lease.complete", {{"t_us", Value(std::uint64_t{500})},
                               {"executed", Value(std::uint64_t{30})}}));
  dispatcher.events.push_back(event_row(
      "metric", {{"t_us", Value(std::uint64_t{600})},
                 {"kind", Value("counter")},
                 {"name", Value("batch.kernel.ticks")},
                 {"value", Value(std::uint64_t{1234})}}));
  dispatcher.events.push_back(
      event_row("run.start", {{"t_us", Value(std::uint64_t{50})}}));
  std::ostringstream out;
  const TraceExportSummary summary = write_chrome_trace(out, {dispatcher});
  const std::string trace = out.str();

  EXPECT_NE(trace.find("\"ph\":\"C\",\"name\":\"serve.pending_ranges\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\",\"name\":\"serve.runs_covered\""),
            std::string::npos);
  // runs_done samples at both completions; runs_per_s needs a prior
  // completion to compute a rate, so only the second emits one.
  EXPECT_NE(trace.find("\"name\":\"serve.runs_done\",\"pid\":1,\"tid\":0,"
                       "\"ts\":300,\"args\":{\"value\":50}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"value\":80}"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"serve.runs_per_s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\",\"name\":\"metric.batch.kernel.ticks\""),
            std::string::npos);
  // serve.* lifecycle events double as instants; per-run noise does not.
  EXPECT_NE(trace.find("\"ph\":\"i\",\"name\":\"serve.lease.grant\""),
            std::string::npos);
  EXPECT_EQ(trace.find("run.start"), std::string::npos);
  EXPECT_EQ(summary.instants, 4u);  // grant + partial + 2x complete
  EXPECT_GE(summary.counter_samples, 6u);
  EXPECT_EQ(summary.spans, 0u);
  EXPECT_EQ(summary.synthesized, 0u);
}

}  // namespace
}  // namespace propane::obs
