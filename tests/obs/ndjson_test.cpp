// NDJSON round-trip: whatever event_to_json emits, parse_flat_json_object
// must read back verbatim -- the writer and `campaign top` share this
// contract.
#include "obs/ndjson.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

namespace propane::obs {
namespace {

const Value* find(const std::vector<Field>& fields, std::string_view key) {
  for (const Field& field : fields) {
    if (field.key == key) return &field.value;
  }
  return nullptr;
}

std::vector<Field> round_trip(const Event& event) {
  const auto fields = parse_flat_json_object(event_to_json(event));
  EXPECT_TRUE(fields.has_value()) << event_to_json(event);
  return fields.value_or(std::vector<Field>{});
}

TEST(Escaping, ControlCharactersAndQuotesRoundTrip) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x01 utf8 \xc3\xa9";
  Event event;
  event.name = nasty;
  event.fields = {{"msg", Value(nasty)}};
  const std::vector<Field> fields = round_trip(event);
  const Value* name = find(fields, "event");
  const Value* msg = find(fields, "msg");
  ASSERT_NE(name, nullptr);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(name->as_string(), nasty);
  EXPECT_EQ(msg->as_string(), nasty);
}

TEST(Escaping, JsonEscapeProducesStandardSequences) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("\x01"), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Numbers, ExtremesRoundTripExactly) {
  Event event;
  event.name = "n";
  event.fields = {
      {"i64min", Value(std::numeric_limits<std::int64_t>::min())},
      {"u64max", Value(std::numeric_limits<std::uint64_t>::max())},
      {"frac", Value(0.1)},
      {"huge", Value(-1.5e300)},
      {"flag", Value(true)},
      {"nothing", Value()},
  };
  const std::vector<Field> fields = round_trip(event);
  EXPECT_EQ(find(fields, "i64min")->as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(find(fields, "u64max")->as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_DOUBLE_EQ(find(fields, "frac")->as_double(), 0.1);
  EXPECT_DOUBLE_EQ(find(fields, "huge")->as_double(), -1.5e300);
  EXPECT_TRUE(find(fields, "flag")->as_bool());
  EXPECT_EQ(find(fields, "nothing")->kind(), Value::Kind::kNull);
}

TEST(Numbers, NonFiniteDoublesSerialiseAsNull) {
  Event event;
  event.name = "n";
  event.fields = {{"inf", Value(std::numeric_limits<double>::infinity())}};
  const std::vector<Field> fields = round_trip(event);
  EXPECT_EQ(find(fields, "inf")->kind(), Value::Kind::kNull);
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_FALSE(parse_flat_json_object("").has_value());
  EXPECT_FALSE(parse_flat_json_object("{").has_value());
  EXPECT_FALSE(parse_flat_json_object("{\"a\":1").has_value());
  EXPECT_FALSE(parse_flat_json_object("{\"a\":1}x").has_value());
  EXPECT_FALSE(parse_flat_json_object("{\"a\":{\"nested\":1}}").has_value());
  EXPECT_FALSE(parse_flat_json_object("{\"a\":[1,2]}").has_value());
  EXPECT_FALSE(parse_flat_json_object("{\"a\":\"unterminated}").has_value());
  // The torn-tail shape `top` tolerates: a prefix cut mid-number.
  EXPECT_FALSE(parse_flat_json_object("{\"event\":\"x\",\"t_us\":12")
                   .has_value());
}

TEST(Parser, AcceptsWhitespaceAndUnicodeEscapes) {
  const auto fields =
      parse_flat_json_object("{ \"event\" : \"x\" , \"s\" : \"\\u00e9\" }");
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(find(*fields, "s")->as_string(), "\xc3\xa9");
}

TEST(Sink, WritesOneParseableLinePerEvent) {
  std::ostringstream out;
  NdjsonSink sink(out);
  sink.emit(make_event("first", {{"n", Value(1)}}));
  sink.emit(make_event("second", {{"n", Value(2)}}));
  sink.flush();
  EXPECT_EQ(sink.event_count(), 2u);
  EXPECT_EQ(sink.bytes_written(), out.str().size());

  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> names;
  while (std::getline(in, line)) {
    const auto fields = parse_flat_json_object(line);
    ASSERT_TRUE(fields.has_value()) << line;
    names.push_back(find(*fields, "event")->as_string());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"first", "second"}));
}

TEST(Sink, AppendModeConcatenatesSessions) {
  const std::filesystem::path path =
      std::filesystem::path(testing::TempDir()) / "ndjson_append_test.ndjson";
  std::filesystem::remove(path);
  {
    NdjsonSink sink(path);
    sink.emit(make_event("one"));
  }
  {
    NdjsonSink sink(path);  // append is the default
    sink.emit(make_event("two"));
  }
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    EXPECT_TRUE(parse_flat_json_object(line).has_value()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::filesystem::remove(path);
}

TEST(Sink, AppendModeHealsMissingTrailingNewline) {
  // Crash residue: a killed writer leaves a line with no trailing newline.
  const std::filesystem::path path =
      std::filesystem::path(testing::TempDir()) / "ndjson_torn_test.ndjson";
  std::filesystem::remove(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"event":"torn","t_us":1)";  // truncated mid-object
  }
  {
    NdjsonSink sink(path);
    sink.emit(make_event("after_crash"));
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(parse_flat_json_object(lines[0]).has_value());
  const auto fields = parse_flat_json_object(lines[1]);
  ASSERT_TRUE(fields.has_value()) << lines[1];
  EXPECT_EQ(find(*fields, "event")->as_string(), "after_crash");
  std::filesystem::remove(path);
}

TEST(Event, TimestampsAreMonotonic) {
  const Event a = make_event("a");
  const Event b = make_event("b");
  EXPECT_LE(a.t_us, b.t_us);
}

}  // namespace
}  // namespace propane::obs
