// Scoped spans: per-thread nesting, completion ordering, the bounded
// buffer's drop-oldest policy and the null-telemetry no-op path.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/telemetry.hpp"

namespace propane::obs {
namespace {

TEST(Span, NullTelemetryIsANoop) {
  Span null_span(nullptr, "nothing");
  EXPECT_FALSE(null_span.enabled());

  Telemetry empty;  // all members null: still disabled
  Span empty_span(&empty, "nothing");
  EXPECT_FALSE(empty_span.enabled());
}

TEST(Span, NestedSpansRecordParentAndDepth) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    {
      Span middle(&telemetry, "middle");
      Span inner(&telemetry, "inner");
      EXPECT_NE(inner.id(), middle.id());
    }
  }
  // Completion order: innermost scopes close first.
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[0].depth, 2u);
}

TEST(Span, SiblingSpansShareAParent) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span parent(&telemetry, "parent");
    { Span first(&telemetry, "first"); }
    { Span second(&telemetry, "second"); }
  }
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST(Span, NestingIsPerThread) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    std::thread worker([&] {
      // A span on another thread has no active parent there.
      Span detached(&telemetry, "detached");
    });
    worker.join();
  }
  for (const FinishedSpan& span : buffer.snapshot()) {
    if (span.name == "detached") {
      EXPECT_EQ(span.parent_id, 0u);
      EXPECT_EQ(span.depth, 0u);
    }
  }
}

TEST(SpanBuffer, DropsOldestWhenFull) {
  SpanBuffer buffer(2);
  buffer.push(FinishedSpan{.name = "a"});
  buffer.push(FinishedSpan{.name = "b"});
  buffer.push(FinishedSpan{.name = "c"});
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1u);
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "b");
  EXPECT_EQ(spans[1].name, "c");
}

TEST(Span, EmitsSpanEventsWhenSinkAttached) {
  std::ostringstream out;
  NdjsonSink sink(out);
  Telemetry telemetry;
  telemetry.events = &sink;
  { Span span(&telemetry, "timed"); }
  const auto fields = parse_flat_json_object(out.str().substr(
      0, out.str().find('\n')));
  ASSERT_TRUE(fields.has_value());
  bool saw_name = false;
  for (const Field& field : *fields) {
    if (field.key == "name") {
      EXPECT_EQ(field.value.as_string(), "timed");
      saw_name = true;
    }
  }
  EXPECT_TRUE(saw_name);
}

TEST(Span, DurationsAreOrderedByInclusion) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    { Span inner(&telemetry, "inner"); }
  }
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[0].duration_us, spans[1].duration_us);
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
}

}  // namespace
}  // namespace propane::obs
