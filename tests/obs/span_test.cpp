// Scoped spans: per-thread nesting, completion ordering, the bounded
// buffer's drop-oldest policy, the null-telemetry no-op path, and the
// cross-process additions (explicit parents, id namespacing, manual spans,
// span stats) plus concurrent push/snapshot safety.
#include "obs/span.hpp"

#include <atomic>
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace propane::obs {
namespace {

TEST(Span, NullTelemetryIsANoop) {
  Span null_span(nullptr, "nothing");
  EXPECT_FALSE(null_span.enabled());

  Telemetry empty;  // all members null: still disabled
  Span empty_span(&empty, "nothing");
  EXPECT_FALSE(empty_span.enabled());
}

TEST(Span, NestedSpansRecordParentAndDepth) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    {
      Span middle(&telemetry, "middle");
      Span inner(&telemetry, "inner");
      EXPECT_NE(inner.id(), middle.id());
    }
  }
  // Completion order: innermost scopes close first.
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[0].depth, 2u);
}

TEST(Span, SiblingSpansShareAParent) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span parent(&telemetry, "parent");
    { Span first(&telemetry, "first"); }
    { Span second(&telemetry, "second"); }
  }
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST(Span, NestingIsPerThread) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    std::thread worker([&] {
      // A span on another thread has no active parent there.
      Span detached(&telemetry, "detached");
    });
    worker.join();
  }
  for (const FinishedSpan& span : buffer.snapshot()) {
    if (span.name == "detached") {
      EXPECT_EQ(span.parent_id, 0u);
      EXPECT_EQ(span.depth, 0u);
    }
  }
}

TEST(SpanBuffer, DropsOldestWhenFull) {
  SpanBuffer buffer(2);
  buffer.push(FinishedSpan{.name = "a"});
  buffer.push(FinishedSpan{.name = "b"});
  buffer.push(FinishedSpan{.name = "c"});
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1u);
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "b");
  EXPECT_EQ(spans[1].name, "c");
}

TEST(Span, EmitsSpanEventsWhenSinkAttached) {
  std::ostringstream out;
  NdjsonSink sink(out);
  Telemetry telemetry;
  telemetry.events = &sink;
  { Span span(&telemetry, "timed"); }
  const auto fields = parse_flat_json_object(out.str().substr(
      0, out.str().find('\n')));
  ASSERT_TRUE(fields.has_value());
  bool saw_name = false;
  for (const Field& field : *fields) {
    if (field.key == "name") {
      EXPECT_EQ(field.value.as_string(), "timed");
      saw_name = true;
    }
  }
  EXPECT_TRUE(saw_name);
}

TEST(Span, DurationsAreOrderedByInclusion) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span outer(&telemetry, "outer");
    { Span inner(&telemetry, "inner"); }
  }
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[0].duration_us, spans[1].duration_us);
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
}

TEST(Span, ExplicitParentOverridesTheThreadStack) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  {
    Span local_parent(&telemetry, "local");
    // A wire-carried parent id (another process's span) wins over the
    // active local span.
    SpanOptions options;
    options.parent_id = 0xABCD;
    Span remote_child(&telemetry, "remote_child", options);
  }
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "remote_child");
  EXPECT_EQ(spans[0].parent_id, 0xABCDu);
}

TEST(Span, OptionFieldsLandInTheSpanEvent) {
  std::ostringstream out;
  NdjsonSink sink(out);
  Telemetry telemetry;
  telemetry.events = &sink;
  SpanOptions options;
  options.parent_id = 7;
  options.fields = {{"lease_id", Value(std::uint64_t{11})}};
  { Span span(&telemetry, "worker.lease", options); }
  const auto fields = parse_flat_json_object(
      out.str().substr(0, out.str().find('\n')));
  ASSERT_TRUE(fields.has_value());
  bool saw_lease = false, saw_parent = false, saw_start = false;
  for (const Field& field : *fields) {
    if (field.key == "lease_id") {
      EXPECT_EQ(field.value.as_uint(), 11u);
      saw_lease = true;
    }
    if (field.key == "parent_id") {
      EXPECT_EQ(field.value.as_uint(), 7u);
      saw_parent = true;
    }
    if (field.key == "start_us") saw_start = true;
  }
  EXPECT_TRUE(saw_lease);
  EXPECT_TRUE(saw_parent);
  EXPECT_TRUE(saw_start);
}

TEST(SpanBuffer, IdBaseNamespacesProcesses) {
  SpanBuffer dispatcher;
  SpanBuffer worker;
  worker.set_id_base(std::uint64_t{1} << 40);
  EXPECT_EQ(dispatcher.next_id(), 1u);
  EXPECT_EQ(worker.next_id(), (std::uint64_t{1} << 40) + 1);
  EXPECT_EQ(worker.id_base(), std::uint64_t{1} << 40);
}

TEST(Span, ManualSpanRecordsLikeAScopedOne) {
  SpanBuffer buffer;
  std::ostringstream out;
  NdjsonSink sink(out);
  Telemetry telemetry;
  telemetry.spans = &buffer;
  telemetry.events = &sink;
  emit_manual_span(&telemetry, "serve.lease", 42, 7, 1000, 250,
                   {{"lease_id", Value(std::uint64_t{3})}});
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "serve.lease");
  EXPECT_EQ(spans[0].id, 42u);
  EXPECT_EQ(spans[0].parent_id, 7u);
  EXPECT_EQ(spans[0].start_us, 1000u);
  EXPECT_EQ(spans[0].duration_us, 250u);
  EXPECT_NE(out.str().find("\"serve.lease\""), std::string::npos);
  // Null telemetry: a no-op, not a crash.
  emit_manual_span(nullptr, "nothing", 1, 0, 0, 0);
}

TEST(Span, RecordsTheEmittingThreadOrdinal) {
  SpanBuffer buffer;
  Telemetry telemetry;
  telemetry.spans = &buffer;
  { Span here(&telemetry, "here"); }
  std::thread other([&] { Span there(&telemetry, "there"); });
  other.join();
  const std::vector<FinishedSpan> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(Span, PublishSpanStatsExportsGauges) {
  MetricsRegistry metrics;
  SpanBuffer buffer(2);
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.spans = &buffer;
  buffer.push(FinishedSpan{.name = "a"});
  buffer.push(FinishedSpan{.name = "b"});
  buffer.push(FinishedSpan{.name = "c"});  // evicts "a"
  publish_span_stats(&telemetry);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.gauges.at("obs.spans.buffered"), 2.0);
  EXPECT_EQ(snapshot.gauges.at("obs.spans.dropped"), 1.0);
  // The gauges ride the same snapshot the CLI serialises, so drop-oldest
  // evictions surface in the metrics JSON.
  EXPECT_NE(metrics_snapshot_to_json(snapshot).find("obs.spans.dropped"),
            std::string::npos);
  publish_span_stats(nullptr);  // null bundle: no-op
}

TEST(SpanBuffer, ConcurrentPushAndSnapshotKeepEveryInvariant) {
  // Exercised under TSan in CI: writers race push() against readers
  // calling snapshot()/size()/dropped().
  SpanBuffer buffer(64);
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<FinishedSpan> spans = buffer.snapshot();
      EXPECT_LE(spans.size(), buffer.capacity());
      for (const FinishedSpan& span : spans) {
        EXPECT_FALSE(span.name.empty());
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        FinishedSpan span;
        span.name = "w" + std::to_string(w);
        span.id = buffer.next_id();
        buffer.push(std::move(span));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(buffer.size() + buffer.dropped(),
            static_cast<std::size_t>(kWriters * kSpansPerWriter));
  EXPECT_EQ(buffer.size(), buffer.capacity());
}

}  // namespace
}  // namespace propane::obs
