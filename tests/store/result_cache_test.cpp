// Durable delta-campaign tests: an incremental run against a baseline
// journal must estimate byte-for-byte what a cold run estimates, survive a
// mid-flight kill, chain as the next delta's baseline, and degrade
// gracefully to a full run over pre-v3 (unfingerprinted) baselines.
#include "store/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"
#include "core/system_model.hpp"
#include "store/journal.hpp"
#include "store/resume.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// The two-module accumulator chain of tests/fi/delta_campaign_test.cpp:
/// src -> M1 -> mid -> M2 -> dst, every signal accumulating so corruption
/// persists. `m2_mask` parameterises M2's behaviour.
fi::TraceSet chain_run(const fi::RunRequest& request, std::uint16_t m2_mask) {
  fi::SignalBus bus;
  const fi::BusSignalId src = bus.add_signal("src");
  const fi::BusSignalId mid = bus.add_signal("mid");
  const fi::BusSignalId dst = bus.add_signal("dst");
  std::optional<fi::InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  fi::TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(src, static_cast<std::uint16_t>(
                       bus.read(src) + request.test_case + 3 * ms + 1));
    bus.write(mid, static_cast<std::uint16_t>(bus.read(mid) + bus.read(src)));
    bus.write(dst, static_cast<std::uint16_t>(
                       bus.read(dst) + (bus.read(mid) & m2_mask)));
    recorder.sample();
  }
  return recorder.take();
}

fi::RunFunction chain_runner(std::uint16_t m2_mask = 0xFFFF) {
  return [m2_mask](const fi::RunRequest& request) {
    return chain_run(request, m2_mask);
  };
}

core::SystemModel chain_model() {
  core::SystemModelBuilder builder;
  builder.add_module("M1", {"src"}, {"mid"});
  builder.add_module("M2", {"mid"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M1", "src");
  builder.connect("M1", "mid", "M2", "mid");
  builder.add_system_output("dst", "M2", "dst");
  return std::move(builder).build();
}

fi::SignalBinding chain_binding(const core::SystemModel& model) {
  return fi::SignalBinding::by_name(model, {"src", "mid", "dst"});
}

/// Flats 0..7 target src (consumer M1), flats 8..15 target mid (consumer
/// M2); 16 runs total.
fi::CampaignConfig chain_config() {
  fi::CampaignConfig config;
  config.test_case_count = 2;
  const std::vector<fi::ErrorModel> models = {fi::bit_flip(2),
                                              fi::bit_flip(10)};
  const std::vector<sim::SimTime> instants = {2 * sim::kMillisecond,
                                              5 * sim::kMillisecond};
  for (const fi::BusSignalId target : {fi::BusSignalId{0},
                                       fi::BusSignalId{1}}) {
    const auto plan = fi::cross_product_plan(target, models, instants);
    config.injections.insert(config.injections.end(), plan.begin(),
                             plan.end());
  }
  config.seed = 0xABCD;
  config.threads = 2;
  return config;
}

fi::ModuleVersionMap v1_tokens() { return {{"M1", 1}, {"M2", 1}}; }

DeltaRunOptions delta_options(fi::ModuleVersionMap versions = v1_tokens()) {
  DeltaRunOptions options;
  options.module_versions = std::move(versions);
  return options;
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = chain_model();
  const fi::SignalBinding binding = chain_binding(model);
  std::ostringstream out;
  write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

/// Runs the reference cold campaign into `dir` through the delta runner
/// with an empty baseline (so its records carry fingerprints and can serve
/// as the next delta's baseline).
DeltaJournalSummary cold_delta_run(const fs::path& dir) {
  const core::SystemModel model = chain_model();
  return run_delta_journaled_campaign(chain_runner(), chain_config(), model,
                                      chain_binding(model), dir,
                                      ResultCache{}, delta_options());
}

TEST(ResultCache, MissingDirectoryLoadsAsEmptyCache) {
  const ResultCache cache = ResultCache::load(fresh_dir("cache_missing"));
  EXPECT_FALSE(cache.loaded());
  EXPECT_EQ(cache.record_count(), 0u);
  EXPECT_EQ(cache.unfingerprinted(), 0u);
  EXPECT_EQ(cache.find(0x1234), nullptr);
  EXPECT_EQ(cache.fingerprint_of_flat(0), 0u);
}

TEST(ResultCache, EmptyBaselineDeltaMatchesPlainJournaledRunByteForByte) {
  const fs::path plain_dir = fresh_dir("cache_plain");
  run_journaled_campaign(chain_runner(), chain_config(), plain_dir);

  const fs::path delta_dir = fresh_dir("cache_empty_baseline");
  const DeltaJournalSummary summary = cold_delta_run(delta_dir);
  EXPECT_EQ(summary.executed, 16u);
  EXPECT_EQ(summary.replayed, 0u);
  EXPECT_TRUE(summary.invalidated_modules.empty());

  EXPECT_EQ(journal_csv(delta_dir), journal_csv(plain_dir));

  // Unlike the plain run, the delta journal is fingerprinted throughout --
  // ready to be a baseline.
  const ResultCache reloaded = ResultCache::load(delta_dir);
  EXPECT_EQ(reloaded.record_count(), 16u);
  EXPECT_EQ(reloaded.unfingerprinted(), 0u);
  const ResultCache plain = ResultCache::load(plain_dir);
  EXPECT_EQ(plain.record_count(), 16u);
  EXPECT_EQ(plain.unfingerprinted(), 16u);
}

TEST(ResultCache, FullBaselineReplaysEverythingAndChains) {
  const fs::path base_dir = fresh_dir("cache_chain_base");
  cold_delta_run(base_dir);
  const std::string cold_csv = journal_csv(base_dir);

  const core::SystemModel model = chain_model();
  const fs::path second_dir = fresh_dir("cache_chain_second");
  const DeltaJournalSummary second = run_delta_journaled_campaign(
      chain_runner(), chain_config(), model, chain_binding(model), second_dir,
      ResultCache::load(base_dir), delta_options());
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.replayed, 16u);
  EXPECT_EQ(journal_csv(second_dir), cold_csv);
  const CampaignDirState state = scan_campaign_dir(second_dir);
  EXPECT_EQ(state.replayed_count, 16u);

  // The all-replayed output journal is itself a complete baseline.
  const fs::path third_dir = fresh_dir("cache_chain_third");
  const DeltaJournalSummary third = run_delta_journaled_campaign(
      chain_runner(), chain_config(), model, chain_binding(model), third_dir,
      ResultCache::load(second_dir), delta_options());
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(third.replayed, 16u);
  EXPECT_EQ(journal_csv(third_dir), cold_csv);
}

TEST(ResultCache, InvalidatedModuleReExecutesOnlyItsRuns) {
  const fs::path base_dir = fresh_dir("cache_invalidate_base");
  cold_delta_run(base_dir);

  const core::SystemModel model = chain_model();
  const fs::path delta_dir = fresh_dir("cache_invalidate_delta");
  const DeltaJournalSummary summary = run_delta_journaled_campaign(
      chain_runner(), chain_config(), model, chain_binding(model), delta_dir,
      ResultCache::load(base_dir), delta_options({{"M1", 1}, {"M2", 2}}));

  EXPECT_EQ(summary.executed, 8u);  // mid-targeted runs (consumer M2)
  EXPECT_EQ(summary.replayed, 8u);  // src-targeted runs (consumer M1)
  ASSERT_EQ(summary.invalidated_modules.size(), 1u);
  EXPECT_EQ(summary.invalidated_modules[0], core::ModuleId{1});
  ASSERT_EQ(summary.per_module.size(), 2u);
  EXPECT_EQ(summary.per_module[0].module, "M1");
  EXPECT_FALSE(summary.per_module[0].invalidated);
  EXPECT_EQ(summary.per_module[0].replayed, 8u);
  EXPECT_EQ(summary.per_module[0].executed, 0u);
  EXPECT_EQ(summary.per_module[1].module, "M2");
  EXPECT_TRUE(summary.per_module[1].invalidated);
  EXPECT_EQ(summary.per_module[1].replayed, 0u);
  EXPECT_EQ(summary.per_module[1].executed, 8u);

  // The code did not actually change, so the incremental journal estimates
  // byte-for-byte what the cold baseline does.
  EXPECT_EQ(journal_csv(delta_dir), journal_csv(base_dir));
}

TEST(ResultCache, KilledDeltaSessionResumesToAByteIdenticalCsv) {
  const fs::path base_dir = fresh_dir("cache_kill_base");
  cold_delta_run(base_dir);
  const std::string cold_csv = journal_csv(base_dir);

  // Kill an incremental session (M2 invalidated) partway through its
  // executed remainder; completed frames -- replayed and executed alike --
  // are already flushed.
  const core::SystemModel model = chain_model();
  const fs::path delta_dir = fresh_dir("cache_kill_delta");
  std::atomic<std::size_t> injections_run{0};
  const fi::RunFunction crashing = [&](const fi::RunRequest& request) {
    if (request.injection && injections_run.fetch_add(1) >= 3) {
      throw std::runtime_error("simulated crash");
    }
    return chain_run(request, 0xFFFF);
  };
  EXPECT_ANY_THROW(run_delta_journaled_campaign(
      crashing, chain_config(), model, chain_binding(model), delta_dir,
      ResultCache::load(base_dir), delta_options({{"M1", 1}, {"M2", 2}})));
  const CampaignDirState partial = scan_campaign_dir(delta_dir);
  EXPECT_LT(partial.completed_count, 16u);

  // Resume through the same delta path: journaled runs are skipped, the
  // rest replay or execute as their fingerprints dictate.
  const DeltaJournalSummary resumed = run_delta_journaled_campaign(
      chain_runner(), chain_config(), model, chain_binding(model), delta_dir,
      ResultCache::load(base_dir), delta_options({{"M1", 1}, {"M2", 2}}));
  EXPECT_EQ(resumed.skipped_completed, partial.completed_count);
  EXPECT_EQ(resumed.executed + resumed.replayed + resumed.skipped_completed,
            16u);
  EXPECT_EQ(journal_csv(delta_dir), cold_csv);
}

/// Hand-crafts a v2 shard (no fingerprint/flags words) to pin down
/// backward read-compatibility.
void write_v2_shard(const fs::path& dir, const Manifest& manifest) {
  fs::create_directories(dir);
  std::ofstream out(dir / "shard-000000.pjl", std::ios::binary);
  ASSERT_TRUE(out.is_open());
  out.write(kJournalMagic, sizeof(kJournalMagic));
  ByteWriter header;
  header.u32(2);  // journal version 2
  out.write(reinterpret_cast<const char*>(header.bytes().data()),
            static_cast<std::streamsize>(header.bytes().size()));

  const auto write_frame = [&out](RecordType type,
                                  const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> payload;
    payload.push_back(static_cast<std::uint8_t>(type));
    payload.insert(payload.end(), body.begin(), body.end());
    ByteWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload.data(), payload.size()));
    out.write(reinterpret_cast<const char*>(frame.bytes().data()),
              static_cast<std::streamsize>(frame.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  };
  write_frame(RecordType::kManifest, encode_manifest(manifest));

  for (std::uint32_t test_case = 0; test_case < 2; ++test_case) {
    ByteWriter record;  // v2 layout: no fingerprint, no flags byte
    record.u32(0);          // injection_index
    record.u32(test_case);  // test_case
    record.u32(0);          // target
    record.u64(2 * sim::kMillisecond);
    record.u32(3);  // signal_count
    record.u32(1);  // diverged_count
    record.u32(0);  // diverged signal id
    record.u64(2);  // first_ms
    record.u16(5);  // golden value
    record.u16(9);  // observed value
    write_frame(RecordType::kInjectionResult, record.take());
  }
}

TEST(ResultCache, V2BaselineReadsButNeverReplays) {
  const fs::path v2_dir = fresh_dir("cache_v2_baseline");
  write_v2_shard(v2_dir, manifest_for(chain_config()));

  const ResultCache cache = ResultCache::load(v2_dir);
  EXPECT_TRUE(cache.loaded());
  EXPECT_EQ(cache.record_count(), 2u);
  EXPECT_EQ(cache.unfingerprinted(), 2u);
  EXPECT_EQ(cache.fingerprint_of_flat(0), 0u);

  // Same plan, but the v2 records carry no content address: everything
  // executes, and the unknown fingerprints are not misread as stale
  // modules.
  const core::SystemModel model = chain_model();
  const fs::path delta_dir = fresh_dir("cache_v2_delta");
  const DeltaJournalSummary summary = run_delta_journaled_campaign(
      chain_runner(), chain_config(), model, chain_binding(model), delta_dir,
      cache, delta_options());
  EXPECT_EQ(summary.replayed, 0u);
  EXPECT_EQ(summary.executed, 16u);
  EXPECT_EQ(summary.baseline_unfingerprinted, 2u);
  EXPECT_TRUE(summary.invalidated_modules.empty());
}

TEST(ResultCache, MismatchedOutputDirectoryIsRefused) {
  const fs::path dir = fresh_dir("cache_mismatch");
  cold_delta_run(dir);
  fi::CampaignConfig other = chain_config();
  other.seed += 1;
  const core::SystemModel model = chain_model();
  EXPECT_THROW(
      run_delta_journaled_campaign(chain_runner(), other, model,
                                   chain_binding(model), dir, ResultCache{},
                                   delta_options()),
      ContractViolation);
}

}  // namespace
}  // namespace propane::store
