// End-to-end durability tests: a campaign interrupted mid-flight and then
// resumed must be indistinguishable -- byte for byte -- from one that ran
// uninterrupted, and a campaign split across processes and merged must
// estimate exactly what a single process would have.
#include "store/resume.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"
#include "core/system_model.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;  // run_journaled_campaign creates it
}

/// The miniature system of tests/fi/campaign_test.cpp: "src" is freshly
/// produced every tick, "dst" mirrors it with the low nibble masked off.
fi::TraceSet toy_run(const fi::RunRequest& request) {
  fi::SignalBus bus;
  const fi::BusSignalId src = bus.add_signal("src");
  const fi::BusSignalId dst = bus.add_signal("dst");
  std::optional<fi::InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  fi::TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    bus.write(src, static_cast<std::uint16_t>(request.test_case * 100 + ms));
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(dst, static_cast<std::uint16_t>(bus.read(src) & 0xFFF0));
    recorder.sample();
  }
  return recorder.take();
}

fi::CampaignConfig toy_config() {
  fi::CampaignConfig config;
  config.test_case_count = 3;
  config.injections = {
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(0)},
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(8)},
      fi::InjectionSpec{0, 4 * sim::kMillisecond, fi::bit_flip(12)},
      fi::InjectionSpec{0, 6 * sim::kMillisecond, fi::random_replacement()},
  };
  config.threads = 2;
  return config;
}

/// Matching analysis model: system input "src" -> module M -> "dst".
core::SystemModel toy_model() {
  core::SystemModelBuilder builder;
  builder.add_module("M", {"in"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M", "in");
  builder.add_system_output("out", "M", "dst");
  return std::move(builder).build();
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = toy_model();
  const fi::SignalBinding binding =
      fi::SignalBinding::by_name(model, {"src", "dst"});
  std::ostringstream out;
  write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

TEST(Resume, FreshDirectoryRunsTheWholeCampaign) {
  const fs::path dir = fresh_dir("resume_fresh");
  const JournalRunSummary summary =
      run_journaled_campaign(toy_run, toy_config(), dir);
  EXPECT_EQ(summary.total_runs, 12u);
  EXPECT_EQ(summary.executed, 12u);
  EXPECT_EQ(summary.skipped_completed, 0u);
  EXPECT_TRUE(summary.warnings.empty());

  const CampaignDirState state = scan_campaign_dir(dir);
  EXPECT_FALSE(state.fresh);
  EXPECT_EQ(state.completed_count, 12u);
  EXPECT_EQ(state.duplicate_count, 0u);
}

TEST(Resume, EmptyDirectoryMeansFreshCampaign) {
  const fs::path dir = fresh_dir("resume_empty");
  fs::create_directories(dir);
  const CampaignDirState state = scan_campaign_dir(dir);
  EXPECT_TRUE(state.fresh);
  EXPECT_EQ(state.completed_count, 0u);
  EXPECT_TRUE(state.warnings.empty());
}

TEST(Resume, CompletedCampaignResumesAsNoOp) {
  const fs::path dir = fresh_dir("resume_noop");
  run_journaled_campaign(toy_run, toy_config(), dir);
  const JournalRunSummary again =
      run_journaled_campaign(toy_run, toy_config(), dir);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(again.skipped_completed, 12u);
}

TEST(Resume, KilledCampaignResumesToAByteIdenticalCsv) {
  // Uninterrupted reference run.
  const fs::path clean_dir = fresh_dir("resume_clean");
  run_journaled_campaign(toy_run, toy_config(), clean_dir);
  const std::string clean_csv = journal_csv(clean_dir);

  // "Kill" a second campaign partway: after ~half the runs have been
  // journaled, every further run throws. The exception unwinds through the
  // campaign exactly like a crash would -- completed records are already
  // flushed, in-flight runs are lost.
  const fs::path killed_dir = fresh_dir("resume_killed");
  std::atomic<std::size_t> completed{0};
  const fi::RunFunction crashing_run = [&](const fi::RunRequest& request) {
    if (request.injection && completed.fetch_add(1) >= 6) {
      throw std::runtime_error("simulated crash");
    }
    return toy_run(request);
  };
  EXPECT_THROW(run_journaled_campaign(crashing_run, toy_config(), killed_dir),
               std::runtime_error);
  const CampaignDirState partial = scan_campaign_dir(killed_dir);
  EXPECT_FALSE(partial.fresh);
  EXPECT_GT(partial.completed_count, 0u);
  EXPECT_LT(partial.completed_count, 12u);

  // Resume. Only the missing runs execute, with the same derived seeds the
  // uninterrupted campaign used.
  const JournalRunSummary resumed =
      run_journaled_campaign(toy_run, toy_config(), killed_dir);
  EXPECT_EQ(resumed.executed + resumed.skipped_completed, 12u);
  EXPECT_EQ(resumed.skipped_completed, partial.completed_count);

  EXPECT_EQ(journal_csv(killed_dir), clean_csv);
}

TEST(Resume, CollectRecordsRebuildsTheFullResultAcrossSessions) {
  const fs::path dir = fresh_dir("resume_collect");
  // First session: even flat indices only (a process split against itself).
  JournalRunOptions first;
  first.process_count = 2;
  first.process_index = 0;
  run_journaled_campaign(toy_run, toy_config(), dir, first);

  // Second session: the rest, with records materialised. Journaled runs of
  // the first session are reloaded from disk into the result.
  JournalRunOptions second;
  second.collect_records = true;
  const JournalRunSummary summary =
      run_journaled_campaign(toy_run, toy_config(), dir, second);
  EXPECT_EQ(summary.executed, 6u);
  EXPECT_EQ(summary.skipped_completed, 6u);
  ASSERT_EQ(summary.result.records.size(), 12u);
  const fi::CampaignResult reference = fi::run_campaign(toy_run, toy_config());
  for (std::size_t i = 0; i < 12; ++i) {
    const auto& got = summary.result.records[i].report.per_signal;
    const auto& want = reference.records[i].report.per_signal;
    ASSERT_EQ(got.size(), want.size()) << "record " << i;
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s].diverged, want[s].diverged);
      EXPECT_EQ(got[s].first_ms, want[s].first_ms);
      EXPECT_EQ(got[s].observed_value, want[s].observed_value);
    }
  }
}

TEST(Resume, MismatchedPlanIsRefused) {
  const fs::path dir = fresh_dir("resume_mismatch");
  run_journaled_campaign(toy_run, toy_config(), dir);
  fi::CampaignConfig other = toy_config();
  other.seed += 1;
  EXPECT_THROW(run_journaled_campaign(toy_run, other, dir),
               ContractViolation);
}

TEST(Merge, ProcessSplitMergedEqualsSingleProcessRun) {
  const fs::path single_dir = fresh_dir("merge_single");
  run_journaled_campaign(toy_run, toy_config(), single_dir);

  const fs::path part0 = fresh_dir("merge_part0");
  const fs::path part1 = fresh_dir("merge_part1");
  for (std::uint32_t index = 0; index < 2; ++index) {
    JournalRunOptions options;
    options.process_count = 2;
    options.process_index = index;
    options.shard_count = 2;
    const JournalRunSummary summary = run_journaled_campaign(
        toy_run, toy_config(), index == 0 ? part0 : part1, options);
    EXPECT_EQ(summary.executed, 6u);
    EXPECT_EQ(summary.skipped_foreign, 6u);
  }

  const fs::path merged = fresh_dir("merge_dest");
  const MergeSummary summary = merge_journals(merged, {part0, part1});
  EXPECT_EQ(summary.record_count, 12u);
  EXPECT_EQ(summary.duplicate_count, 0u);

  EXPECT_EQ(journal_csv(merged), journal_csv(single_dir));
}

TEST(Merge, OverlappingSourcesDeduplicate) {
  const fs::path full_a = fresh_dir("merge_dup_a");
  const fs::path full_b = fresh_dir("merge_dup_b");
  run_journaled_campaign(toy_run, toy_config(), full_a);
  run_journaled_campaign(toy_run, toy_config(), full_b);

  const fs::path merged = fresh_dir("merge_dup_dest");
  const MergeSummary summary = merge_journals(merged, {full_a, full_b});
  EXPECT_EQ(summary.record_count, 12u);
  EXPECT_EQ(summary.duplicate_count, 12u);
  EXPECT_EQ(journal_csv(merged), journal_csv(full_a));
}

TEST(Merge, MismatchedSourcesAreRefusedBeforeWriting) {
  const fs::path a = fresh_dir("merge_bad_a");
  run_journaled_campaign(toy_run, toy_config(), a);
  fi::CampaignConfig other = toy_config();
  other.test_case_count = 2;
  const fs::path b = fresh_dir("merge_bad_b");
  run_journaled_campaign(toy_run, other, b);

  const fs::path merged = fresh_dir("merge_bad_dest");
  EXPECT_THROW(merge_journals(merged, {a, b}), ContractViolation);
  // Validation happens before any write: no shard files appeared.
  EXPECT_TRUE(ShardedJournalWriter::list_shards(merged).empty());
}

TEST(Merge, SourceWithoutShardsIsRefusedBeforeWriting) {
  const fs::path a = fresh_dir("merge_empty_a");
  run_journaled_campaign(toy_run, toy_config(), a);
  const fs::path empty = fresh_dir("merge_empty_src");
  fs::create_directories(empty);

  const fs::path merged = fresh_dir("merge_empty_dest");
  EXPECT_THROW(merge_journals(merged, {a, empty}), ContractViolation);
  EXPECT_TRUE(ShardedJournalWriter::list_shards(merged).empty());
}

TEST(Merge, DuplicatedSourceDirectoryIsRefusedBeforeWriting) {
  const fs::path a = fresh_dir("merge_twice_a");
  run_journaled_campaign(toy_run, toy_config(), a);

  // The same directory listed twice would silently fold into an
  // all-duplicates no-op; it is almost certainly a caller mistake.
  const fs::path merged = fresh_dir("merge_twice_dest");
  EXPECT_THROW(merge_journals(merged, {a, a}), ContractViolation);
  EXPECT_TRUE(ShardedJournalWriter::list_shards(merged).empty());
}

TEST(Merge, DestinationGivenAsASourceIsRefused) {
  const fs::path a = fresh_dir("merge_self_a");
  run_journaled_campaign(toy_run, toy_config(), a);
  EXPECT_THROW(merge_journals(a, {a}), ContractViolation);
}

TEST(Stats, StreamingEstimateMatchesInMemoryEstimation) {
  const fs::path dir = fresh_dir("stats_match");
  run_journaled_campaign(toy_run, toy_config(), dir);

  const core::SystemModel model = toy_model();
  const fi::SignalBinding binding =
      fi::SignalBinding::by_name(model, {"src", "dst"});
  const JournalStats stats = estimate_from_journal(dir, model, binding);
  EXPECT_EQ(stats.record_count, 12u);

  const fi::CampaignResult campaign = fi::run_campaign(toy_run, toy_config());
  const fi::EstimationResult reference =
      fi::estimate_permeability(model, binding, campaign);
  ASSERT_EQ(stats.estimation.pairs.size(), reference.pairs.size());
  for (std::size_t p = 0; p < reference.pairs.size(); ++p) {
    EXPECT_EQ(stats.estimation.pairs[p].injections,
              reference.pairs[p].injections);
    EXPECT_EQ(stats.estimation.pairs[p].errors, reference.pairs[p].errors);
  }
  EXPECT_DOUBLE_EQ(stats.estimation.permeability.get(0, 0, 0),
                   reference.permeability.get(0, 0, 0));
}

TEST(Stats, EmptyJournalDirectoryIsRefused)
{
  const fs::path dir = fresh_dir("stats_empty");
  fs::create_directories(dir);
  const core::SystemModel model = toy_model();
  const fi::SignalBinding binding =
      fi::SignalBinding::by_name(model, {"src", "dst"});
  EXPECT_THROW(estimate_from_journal(dir, model, binding), ContractViolation);
}

}  // namespace
}  // namespace propane::store
