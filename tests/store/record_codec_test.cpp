#include "store/record_codec.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::store {
namespace {

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits, sizeof(digits)), 0xCBF43926u);
  EXPECT_EQ(crc32(digits, 0), 0u);
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::uint8_t data[] = {0x00, 0x01, 0x02, 0x03};
  const std::uint32_t clean = crc32(data, sizeof(data));
  data[2] ^= 0x10;
  EXPECT_NE(crc32(data, sizeof(data)), clean);
}

TEST(ByteCodec, RoundTripsEveryWidth) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFull);
  writer.str("model \"x\", flip");
  const std::vector<std::uint8_t> bytes = writer.bytes();

  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.str(), "model \"x\", flip");
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteCodec, IntegersAreLittleEndian) {
  ByteWriter writer;
  writer.u32(0x11223344u);
  const auto& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x44);
  EXPECT_EQ(bytes[3], 0x11);
}

TEST(ByteCodec, OverrunViolatesContract) {
  const std::uint8_t two[] = {1, 2};
  ByteReader reader(two, sizeof(two));
  reader.u16();
  EXPECT_THROW(reader.u8(), ContractViolation);
  ByteReader str_reader(two, sizeof(two));
  // Length prefix alone needs 4 bytes.
  EXPECT_THROW(str_reader.str(), ContractViolation);
}

TEST(ManifestCodec, RoundTrips) {
  Manifest manifest;
  manifest.plan_hash = 0xFEEDFACECAFEBEEFull;
  manifest.seed = 42;
  manifest.test_case_count = 25;
  manifest.injection_count = 2080;
  const auto bytes = encode_manifest(manifest);
  EXPECT_EQ(decode_manifest(bytes.data(), bytes.size()), manifest);
  EXPECT_EQ(manifest.total_runs(), 25u * 2080u);
  EXPECT_EQ(manifest.flat_index(1, 3), 28u);
}

fi::InjectionRecord sample_record() {
  fi::InjectionRecord record;
  record.injection_index = 7;
  record.test_case = 3;
  record.target = 12;
  record.when = 2500 * sim::kMillisecond;
  record.report.per_signal.resize(30);
  record.report.per_signal[4] = {true, 2501, 0x00FF, 0x80FF};
  record.report.per_signal[29] = {true, 3000, 7, 8};
  return record;
}

TEST(InjectionRecordCodec, RoundTripsSparseDivergences) {
  const fi::InjectionRecord record = sample_record();
  const auto bytes = encode_injection_record(record);
  const fi::InjectionRecord back =
      decode_injection_record(bytes.data(), bytes.size());
  EXPECT_EQ(back.injection_index, record.injection_index);
  EXPECT_EQ(back.test_case, record.test_case);
  EXPECT_EQ(back.target, record.target);
  EXPECT_EQ(back.when, record.when);
  ASSERT_EQ(back.report.per_signal.size(), record.report.per_signal.size());
  for (std::size_t s = 0; s < back.report.per_signal.size(); ++s) {
    EXPECT_EQ(back.report.per_signal[s].diverged,
              record.report.per_signal[s].diverged);
    EXPECT_EQ(back.report.per_signal[s].first_ms,
              record.report.per_signal[s].first_ms);
    EXPECT_EQ(back.report.per_signal[s].golden_value,
              record.report.per_signal[s].golden_value);
    EXPECT_EQ(back.report.per_signal[s].observed_value,
              record.report.per_signal[s].observed_value);
  }
}

TEST(InjectionRecordCodec, SparseEncodingStaysSmallOnWideBuses) {
  fi::InjectionRecord record;
  record.report.per_signal.resize(10'000);  // wide bus, nothing diverged
  EXPECT_LT(encode_injection_record(record).size(), 100u);
}

TEST(InjectionRecordCodec, RejectsTruncatedAndTrailingBytes) {
  const auto bytes = encode_injection_record(sample_record());
  EXPECT_THROW(decode_injection_record(bytes.data(), bytes.size() - 1),
               ContractViolation);
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_injection_record(padded.data(), padded.size()),
               ContractViolation);
}

TEST(InjectionRecordCodec, RejectsImpossibleDivergenceCounts) {
  // signal_count = 1 but diverged_count = 2.
  ByteWriter writer;
  writer.u32(0);
  writer.u32(0);
  writer.u32(0);
  writer.u64(0);
  writer.str("m");
  writer.u32(1);  // signal_count
  writer.u32(2);  // diverged_count > signal_count
  const auto bytes = writer.take();
  EXPECT_THROW(decode_injection_record(bytes.data(), bytes.size()),
               ContractViolation);
}

fi::CampaignConfig sample_config() {
  fi::CampaignConfig config;
  config.test_case_count = 3;
  config.seed = 99;
  config.injections = {
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(0)},
      fi::InjectionSpec{1, 4 * sim::kMillisecond, fi::bit_flip(8)},
  };
  return config;
}

TEST(PlanHash, StableForIdenticalPlansAcrossThreadCounts) {
  fi::CampaignConfig a = sample_config();
  fi::CampaignConfig b = sample_config();
  b.threads = 8;  // execution detail, not part of the plan
  EXPECT_EQ(plan_hash(a), plan_hash(b));
  EXPECT_EQ(manifest_for(a), manifest_for(b));
}

TEST(PlanHash, ChangesWithAnyPlanIngredient) {
  const std::uint64_t base = plan_hash(sample_config());

  fi::CampaignConfig seed_changed = sample_config();
  seed_changed.seed = 100;
  EXPECT_NE(plan_hash(seed_changed), base);

  fi::CampaignConfig target_changed = sample_config();
  target_changed.injections[0].target = 5;
  EXPECT_NE(plan_hash(target_changed), base);

  fi::CampaignConfig when_changed = sample_config();
  when_changed.injections[1].when = 5 * sim::kMillisecond;
  EXPECT_NE(plan_hash(when_changed), base);

  fi::CampaignConfig model_changed = sample_config();
  model_changed.injections[0].model = fi::bit_flip(1);
  EXPECT_NE(plan_hash(model_changed), base);

  fi::CampaignConfig cases_changed = sample_config();
  cases_changed.test_case_count = 4;
  EXPECT_NE(plan_hash(cases_changed), base);
}

}  // namespace
}  // namespace propane::store
