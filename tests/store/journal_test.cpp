#include "store/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/contracts.hpp"
#include "store/sharded_writer.hpp"

namespace propane::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Manifest test_manifest() {
  Manifest manifest;
  manifest.plan_hash = 0x1234;
  manifest.seed = 7;
  manifest.test_case_count = 2;
  manifest.injection_count = 4;
  return manifest;
}

fi::InjectionRecord make_record(std::uint32_t injection,
                                std::uint32_t test_case) {
  fi::InjectionRecord record;
  record.injection_index = injection;
  record.test_case = test_case;
  record.target = 1;
  record.report.per_signal.resize(4);
  record.report.per_signal[2] = {true, 10 + injection, 1, 2};
  return record;
}

std::vector<fi::InjectionRecord> scan_records(const fs::path& path,
                                              JournalScan* out = nullptr) {
  std::vector<fi::InjectionRecord> records;
  const JournalScan scan = scan_journal_file(
      path, [&](fi::InjectionRecord&& r) { records.push_back(std::move(r)); });
  if (out != nullptr) *out = scan;
  return records;
}

TEST(Journal, WriteThenScanRoundTrips) {
  const fs::path dir = fresh_dir("journal_roundtrip");
  const fs::path file = dir / "shard-000000.pjl";
  {
    JournalWriter writer(file, test_manifest());
    writer.append(make_record(0, 0));
    writer.append(make_record(1, 1));
    EXPECT_EQ(writer.record_count(), 2u);
    EXPECT_GT(writer.bytes_written(), 0u);
  }
  JournalScan scan;
  const auto records = scan_records(file, &scan);
  EXPECT_TRUE(scan.has_manifest);
  EXPECT_EQ(scan.manifest, test_manifest());
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].injection_index, 0u);
  EXPECT_EQ(records[1].test_case, 1u);
  EXPECT_TRUE(records[1].report.per_signal[2].diverged);
  EXPECT_EQ(records[1].report.per_signal[2].first_ms, 11u);
}

TEST(Journal, WriterRefusesExistingFile) {
  const fs::path dir = fresh_dir("journal_exists");
  const fs::path file = dir / "shard-000000.pjl";
  { JournalWriter writer(file, test_manifest()); }
  EXPECT_THROW(JournalWriter(file, test_manifest()), ContractViolation);
}

TEST(Journal, PeekReadsOnlyTheManifest) {
  const fs::path dir = fresh_dir("journal_peek");
  const fs::path file = dir / "shard-000000.pjl";
  {
    JournalWriter writer(file, test_manifest());
    writer.append(make_record(0, 0));
  }
  const JournalScan peek = peek_journal_manifest(file);
  EXPECT_TRUE(peek.has_manifest);
  EXPECT_EQ(peek.manifest, test_manifest());
  EXPECT_EQ(peek.record_count, 0u);  // records not scanned
}

TEST(Journal, TruncatedTailIsSkippedWithWarning) {
  const fs::path dir = fresh_dir("journal_torn");
  const fs::path file = dir / "shard-000000.pjl";
  {
    JournalWriter writer(file, test_manifest());
    writer.append(make_record(0, 0));
    writer.append(make_record(1, 0));
  }
  // Chop into the last frame: the crash left a partial append behind.
  const auto full_size = fs::file_size(file);
  fs::resize_file(file, full_size - 5);

  JournalScan scan;
  const auto records = scan_records(file, &scan);
  EXPECT_TRUE(scan.has_manifest);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.warning.empty());
  ASSERT_EQ(records.size(), 1u);  // the complete record survives
  EXPECT_EQ(records[0].injection_index, 0u);
}

TEST(Journal, TailTornInsideTheFrameHeaderIsAlsoSkipped) {
  const fs::path dir = fresh_dir("journal_torn_header");
  const fs::path file = dir / "shard-000000.pjl";
  std::size_t manifest_only_size = 0;
  {
    JournalWriter writer(file, test_manifest());
    manifest_only_size = writer.bytes_written();
    writer.append(make_record(0, 0));
  }
  // Keep only 3 bytes of the record frame's length/CRC header.
  fs::resize_file(file, manifest_only_size + 3);
  JournalScan scan;
  const auto records = scan_records(file, &scan);
  EXPECT_TRUE(scan.has_manifest);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_TRUE(records.empty());
}

TEST(Journal, MidFileCorruptionIsAHardError) {
  const fs::path dir = fresh_dir("journal_corrupt");
  const fs::path file = dir / "shard-000000.pjl";
  std::size_t first_record_offset = 0;
  {
    JournalWriter writer(file, test_manifest());
    first_record_offset = writer.bytes_written();
    writer.append(make_record(0, 0));
    writer.append(make_record(1, 0));
  }
  // Flip one payload byte of the *first* record -- a complete frame whose
  // CRC no longer matches. That is corruption, not crash residue.
  {
    std::fstream stream(file,
                        std::ios::in | std::ios::out | std::ios::binary);
    stream.seekp(static_cast<std::streamoff>(first_record_offset) + 8 + 4);
    char byte = 0;
    stream.read(&byte, 1);
    stream.seekp(static_cast<std::streamoff>(first_record_offset) + 8 + 4);
    byte = static_cast<char>(byte ^ 0x40);
    stream.write(&byte, 1);
  }
  EXPECT_THROW(scan_records(file), ContractViolation);
}

TEST(Journal, GarbageMagicIsAHardError) {
  const fs::path dir = fresh_dir("journal_magic");
  const fs::path file = dir / "shard-000000.pjl";
  std::ofstream(file, std::ios::binary) << "NOTAJRNL garbage";
  EXPECT_THROW(scan_records(file), ContractViolation);
}

TEST(JournalTail, IncrementalScanSeesOnlyNewRecords) {
  const fs::path dir = fresh_dir("journal_tail");
  const fs::path file = dir / "shard-000000.pjl";
  JournalWriter writer(file, test_manifest());
  writer.append(make_record(0, 0));

  std::vector<fi::InjectionRecord> records;
  const auto sink = [&](fi::InjectionRecord&& r) {
    records.push_back(std::move(r));
  };
  JournalTailScan first = scan_journal_tail(file, 0, sink);
  EXPECT_TRUE(first.has_manifest);
  EXPECT_EQ(first.manifest, test_manifest());
  EXPECT_EQ(first.record_count, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].injection_index, 0u);

  // Nothing new: the scan is a no-op that keeps the offset put.
  JournalTailScan idle = scan_journal_tail(file, first.next_offset, sink);
  EXPECT_FALSE(idle.has_manifest);
  EXPECT_EQ(idle.record_count, 0u);
  EXPECT_EQ(idle.next_offset, first.next_offset);

  // Two more appends while the writer is still live: only they decode.
  writer.append(make_record(1, 0));
  writer.append(make_record(1, 1));
  JournalTailScan second = scan_journal_tail(file, first.next_offset, sink);
  EXPECT_FALSE(second.has_manifest);
  EXPECT_EQ(second.record_count, 2u);
  EXPECT_GT(second.next_offset, first.next_offset);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].test_case, 1u);
}

TEST(JournalTail, InFlightTailFrameIsNotConsumed) {
  const fs::path dir = fresh_dir("journal_tail_inflight");
  const fs::path file = dir / "shard-000000.pjl";
  { JournalWriter writer(file, test_manifest()); }
  const auto full_size = fs::file_size(file);
  // Simulate a frame mid-write: append half a frame header by hand.
  {
    std::ofstream out(file, std::ios::binary | std::ios::app);
    const char half[4] = {42, 0, 0, 0};
    out.write(half, sizeof(half));
  }
  JournalTailScan scan = scan_journal_tail(file, 0, nullptr);
  EXPECT_TRUE(scan.has_manifest);
  EXPECT_EQ(scan.record_count, 0u);
  // The scan stops *before* the partial frame and does not flag it; a live
  // writer finishing the frame would make the next poll consume it whole.
  EXPECT_EQ(scan.next_offset, full_size);
}

TEST(JournalTail, CompleteFrameWithBadCrcIsAHardError) {
  const fs::path dir = fresh_dir("journal_tail_crc");
  const fs::path file = dir / "shard-000000.pjl";
  std::size_t manifest_end = 0;
  {
    JournalWriter writer(file, test_manifest());
    manifest_end = writer.bytes_written();
    writer.append(make_record(0, 0));
  }
  // Flip one payload byte of the (complete) record frame.
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(manifest_end) + 12);
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(manifest_end) + 12);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(manifest_end) + 12);
    f.write(&byte, 1);
  }
  EXPECT_THROW(scan_journal_tail(file, 0, nullptr), ContractViolation);
}

TEST(ShardedWriter, DistributesRecordsAndListsShards) {
  const fs::path dir = fresh_dir("journal_sharded");
  Manifest manifest = test_manifest();
  {
    ShardedJournalWriter writer(dir, manifest, 3);
    EXPECT_EQ(writer.shard_count(), 3u);
    for (std::uint32_t inj = 0; inj < manifest.injection_count; ++inj) {
      for (std::uint32_t tc = 0; tc < manifest.test_case_count; ++tc) {
        writer.append(make_record(inj, tc));
      }
    }
    EXPECT_EQ(writer.record_count(), manifest.total_runs());
  }
  const auto shards = ShardedJournalWriter::list_shards(dir);
  ASSERT_EQ(shards.size(), 3u);
  std::size_t total = 0;
  for (const auto& shard : shards) {
    JournalScan scan;
    total += scan_records(shard, &scan).size();
    EXPECT_EQ(scan.manifest, manifest);
  }
  EXPECT_EQ(total, manifest.total_runs());
}

TEST(ShardedWriter, NewSessionsOpenFreshShards) {
  const fs::path dir = fresh_dir("journal_fresh_shards");
  { ShardedJournalWriter writer(dir, test_manifest(), 2); }
  { ShardedJournalWriter writer(dir, test_manifest(), 2); }
  EXPECT_EQ(ShardedJournalWriter::list_shards(dir).size(), 4u);
}

}  // namespace
}  // namespace propane::store
