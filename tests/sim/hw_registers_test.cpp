#include "sim/hw_registers.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::sim {
namespace {

TEST(FreeRunningTimer, CountsAtConfiguredRate) {
  FreeRunningTimer timer(1);
  EXPECT_EQ(timer.read(0), 0u);
  EXPECT_EQ(timer.read(1000), 1000u);
  FreeRunningTimer fast(2);
  EXPECT_EQ(fast.read(1000), 2000u);
}

TEST(FreeRunningTimer, WrapsAt16Bits) {
  FreeRunningTimer timer(1);
  EXPECT_EQ(timer.read(65536), 0u);
  EXPECT_EQ(timer.read(65537), 1u);
  EXPECT_EQ(timer.read(2 * 65536 + 123), 123u);
}

TEST(FreeRunningTimer, RejectsZeroRate) {
  EXPECT_THROW(FreeRunningTimer(0), ContractViolation);
}

TEST(PulseAccumulator, AccumulatesAndWraps) {
  PulseAccumulator pacnt;
  EXPECT_EQ(pacnt.read(), 0u);
  pacnt.add_pulses(10);
  pacnt.add_pulses(5);
  EXPECT_EQ(pacnt.read(), 15u);
  pacnt.add_pulses(65530);
  EXPECT_EQ(pacnt.read(), 9u);  // wrapped
  pacnt.reset();
  EXPECT_EQ(pacnt.read(), 0u);
}

TEST(InputCapture, LatchesOnCapture) {
  InputCapture tic1;
  EXPECT_FALSE(tic1.has_capture());
  EXPECT_EQ(tic1.read(), 0u);
  tic1.capture(1234);
  EXPECT_TRUE(tic1.has_capture());
  EXPECT_EQ(tic1.read(), 1234u);
  tic1.capture(42);
  EXPECT_EQ(tic1.read(), 42u);  // only the last capture is held
  tic1.reset();
  EXPECT_FALSE(tic1.has_capture());
  EXPECT_EQ(tic1.read(), 0u);
}

TEST(OutputCompare, HoldsWrittenValue) {
  OutputCompare toc2;
  EXPECT_EQ(toc2.read(), 0u);
  toc2.write(5555);
  EXPECT_EQ(toc2.read(), 5555u);
}

TEST(Adc, LinearQuantization) {
  Adc adc(0.0, 10.0);
  adc.set_physical(0.0);
  EXPECT_EQ(adc.read(), 0u);
  adc.set_physical(10.0);
  EXPECT_EQ(adc.read(), 65535u);
  adc.set_physical(5.0);
  EXPECT_NEAR(adc.read(), 32768, 1);
}

TEST(Adc, ClampsToRails) {
  Adc adc(0.0, 10.0);
  adc.set_physical(-3.0);
  EXPECT_EQ(adc.read(), 0u);
  adc.set_physical(12.0);
  EXPECT_EQ(adc.read(), 65535u);
}

TEST(Adc, NonZeroBasedRange) {
  Adc adc(-5.0, 5.0);
  adc.set_physical(0.0);
  EXPECT_NEAR(adc.read(), 32768, 1);
}

TEST(Adc, ToPhysicalInvertsRead) {
  Adc adc(0.0, 10.0e6);
  for (double value : {0.0, 1.0e6, 5.5e6, 10.0e6}) {
    adc.set_physical(value);
    EXPECT_NEAR(adc.to_physical(adc.read()), value, 10.0e6 / 65535.0);
  }
}

TEST(Adc, RejectsEmptyRange) {
  EXPECT_THROW(Adc(1.0, 1.0), ContractViolation);
  EXPECT_THROW(Adc(2.0, 1.0), ContractViolation);
}

TEST(Adc, QuantizationIsMonotone) {
  Adc adc(0.0, 1.0);
  std::uint16_t previous = 0;
  for (int i = 0; i <= 100; ++i) {
    adc.set_physical(static_cast<double>(i) / 100.0);
    const std::uint16_t counts = adc.read();
    EXPECT_GE(counts, previous);
    previous = counts;
  }
}

}  // namespace
}  // namespace propane::sim
