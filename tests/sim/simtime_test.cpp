#include "sim/simtime.hpp"

#include <gtest/gtest.h>

namespace propane::sim {
namespace {

TEST(SimTime, UnitRelations) {
  EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
}

TEST(SimTime, MillisecondConversionTruncates) {
  EXPECT_EQ(to_milliseconds(0), 0u);
  EXPECT_EQ(to_milliseconds(999), 0u);
  EXPECT_EQ(to_milliseconds(1000), 1u);
  EXPECT_EQ(to_milliseconds(2 * kSecond + 1), 2000u);
}

TEST(SimTime, RoundTripWholeMilliseconds) {
  for (std::uint64_t ms : {0ULL, 1ULL, 500ULL, 15000ULL}) {
    EXPECT_EQ(to_milliseconds(from_milliseconds(ms)), ms);
  }
}

TEST(SimTime, SecondsConversion) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond / 2), 0.5);
  EXPECT_DOUBLE_EQ(to_seconds(0), 0.0);
}

}  // namespace
}  // namespace propane::sim
