#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace propane::sim {
namespace {

TEST(SlotScheduler, RequiresAtLeastOneSlot) {
  EXPECT_THROW(SlotScheduler(0), ContractViolation);
}

TEST(SlotScheduler, AdvancesTimeOneMillisecondPerSlot) {
  SlotScheduler sched(7);
  EXPECT_EQ(sched.now(), 0u);
  sched.run_slot();
  EXPECT_EQ(sched.now(), kMillisecond);
  sched.run_cycles(1);
  EXPECT_EQ(sched.now(), 8 * kMillisecond);
}

TEST(SlotScheduler, SlotTasksRunInTheirSlotOnly) {
  SlotScheduler sched(7);
  std::vector<std::size_t> ran_in_slot;
  sched.add_slot_task(2, "only2", [&](SimTime now) {
    ran_in_slot.push_back(to_milliseconds(now) % 7);
  });
  sched.run_cycles(3);
  ASSERT_EQ(ran_in_slot.size(), 3u);
  for (std::size_t slot : ran_in_slot) EXPECT_EQ(slot, 2u);
}

TEST(SlotScheduler, EverySlotTaskRunsEachSlot) {
  SlotScheduler sched(7);
  int count = 0;
  sched.add_every_slot_task("all", [&](SimTime) { ++count; });
  sched.run_cycles(2);
  EXPECT_EQ(count, 14);
}

TEST(SlotScheduler, BackgroundRunsAfterSlotTasks) {
  SlotScheduler sched(2);
  std::vector<std::string> order;
  sched.add_slot_task(0, "slot0", [&](SimTime) { order.push_back("slot0"); });
  sched.add_background_task("bg", [&](SimTime) { order.push_back("bg"); });
  sched.run_slot();  // slot 0
  sched.run_slot();  // slot 1 (no slot task)
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "slot0");
  EXPECT_EQ(order[1], "bg");
  EXPECT_EQ(order[2], "bg");
}

TEST(SlotScheduler, TasksWithinSlotKeepRegistrationOrder) {
  SlotScheduler sched(1);
  std::vector<int> order;
  sched.add_slot_task(0, "a", [&](SimTime) { order.push_back(1); });
  sched.add_slot_task(0, "b", [&](SimTime) { order.push_back(2); });
  sched.add_slot_task(0, "c", [&](SimTime) { order.push_back(3); });
  sched.run_slot();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SlotScheduler, RunUntilStopsAtDeadline) {
  SlotScheduler sched(7);
  sched.run_until(10 * kMillisecond);
  EXPECT_EQ(sched.now(), 10 * kMillisecond);
  EXPECT_EQ(sched.current_slot(), 3u);
  EXPECT_EQ(sched.cycles_completed(), 1u);
}

TEST(SlotScheduler, CurrentSlotWraps) {
  SlotScheduler sched(3);
  for (int i = 0; i < 7; ++i) sched.run_slot();
  EXPECT_EQ(sched.current_slot(), 1u);
  EXPECT_EQ(sched.cycles_completed(), 2u);
}

TEST(SlotScheduler, TaskReceivesSlotStartTime) {
  SlotScheduler sched(2);
  std::vector<SimTime> stamps;
  sched.add_every_slot_task("t", [&](SimTime now) { stamps.push_back(now); });
  sched.run_cycles(1);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], kMillisecond);
}

TEST(SlotScheduler, SlotTaskNamesReported) {
  SlotScheduler sched(2);
  sched.add_slot_task(1, "x", [](SimTime) {});
  sched.add_every_slot_task("y", [](SimTime) {});
  const auto names = sched.slot_task_names(1);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[1], "y");
  EXPECT_EQ(sched.slot_task_names(0).size(), 1u);
}

TEST(SlotScheduler, ContractsOnBadArguments) {
  SlotScheduler sched(2);
  EXPECT_THROW(sched.add_slot_task(2, "oob", [](SimTime) {}),
               ContractViolation);
  EXPECT_THROW(sched.add_slot_task(0, "null", nullptr), ContractViolation);
  EXPECT_THROW(sched.add_background_task("null", nullptr),
               ContractViolation);
  EXPECT_THROW(sched.slot_task_names(5), ContractViolation);
}

}  // namespace
}  // namespace propane::sim
