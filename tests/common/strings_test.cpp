#include "common/strings.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace propane {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, EmptyAndSingle) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("no-trim"), "no-trim");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("permeability", "perm"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_FALSE(starts_with("xyz", "y"));
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(0.8604, 3), "0.860");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatProbability, NanRendersDash) {
  EXPECT_EQ(format_probability(std::nan("")), "-");
  EXPECT_EQ(format_probability(0.5), "0.500");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // never truncates
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace propane
