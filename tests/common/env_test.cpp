#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace propane {
namespace {

TEST(Env, UnsetReturnsNullopt) {
  ::unsetenv("PROPANE_TEST_UNSET");
  EXPECT_FALSE(env_string("PROPANE_TEST_UNSET").has_value());
}

TEST(Env, SetReturnsValue) {
  ::setenv("PROPANE_TEST_SET", "hello", 1);
  const auto value = env_string("PROPANE_TEST_SET");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
  ::unsetenv("PROPANE_TEST_SET");
}

TEST(Env, EmptyValueTreatedAsUnset) {
  ::setenv("PROPANE_TEST_EMPTY", "", 1);
  EXPECT_FALSE(env_string("PROPANE_TEST_EMPTY").has_value());
  ::unsetenv("PROPANE_TEST_EMPTY");
}

TEST(EnvUint, ParsesInteger) {
  ::setenv("PROPANE_TEST_NUM", "1234", 1);
  EXPECT_EQ(env_uint("PROPANE_TEST_NUM", 7), 1234u);
  ::unsetenv("PROPANE_TEST_NUM");
}

TEST(EnvUint, FallbackOnUnsetOrGarbage) {
  ::unsetenv("PROPANE_TEST_NUM");
  EXPECT_EQ(env_uint("PROPANE_TEST_NUM", 7), 7u);
  ::setenv("PROPANE_TEST_NUM", "12x", 1);
  EXPECT_EQ(env_uint("PROPANE_TEST_NUM", 7), 7u);
  ::setenv("PROPANE_TEST_NUM", "abc", 1);
  EXPECT_EQ(env_uint("PROPANE_TEST_NUM", 7), 7u);
  ::unsetenv("PROPANE_TEST_NUM");
}

}  // namespace
}  // namespace propane
