// ExactDivisor must return the exact bits of `x / y` -- the batched
// environment kernel substitutes it for the scalar path's divide
// instructions, and the lockstep equivalence guarantee rests on the two
// being indistinguishable. The checks here compare bit patterns, not
// values, so a one-ulp deviation (or a -0.0 / +0.0 swap) fails.
#include "common/exact_div.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace propane {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

void expect_exact(double x, double y) {
  const ExactDivisor d(y);
  const double got = d.divide(x);
  const double want = x / y;
  EXPECT_EQ(bits_of(got), bits_of(want))
      << "x=" << x << " y=" << y << " got=" << got << " want=" << want;
}

// The divisors the environment sweep actually uses.
constexpr double kSimDivisors[] = {10.0e6,                      // pressure FS
                                   2.0 * 3.141592653589793 * 0.5 / 64,
                                   70000.0, 12500.0, 3.5e4};    // masses

TEST(ExactDivisorTest, ExactOnSimulatorOperandRanges) {
  Rng rng(0x5eedULL);
  for (const double y : kSimDivisors) {
    for (int i = 0; i < 200000; ++i) {
      // Dividends span the simulator's dynamic range: pressures up to
      // 1e7, forces up to 1e6, per-tick velocity increments down to 1e-9.
      const double mag = std::exp2(rng.uniform01() * 60.0 - 30.0);
      expect_exact(rng.uniform01() * mag, y);
    }
  }
}

TEST(ExactDivisorTest, ExactOnRandomBitPatterns) {
  Rng rng(0xd1d1dULL);
  for (int i = 0; i < 500000; ++i) {
    // Random finite normal doubles via random bit patterns, exponent
    // restricted to avoid overflow/subnormal quotients (outside the
    // documented contract).
    const std::uint64_t raw = rng();
    const std::uint64_t exp =
        512 + (raw >> 52) % 1024;  // biased exponent in [512, 1536)
    const std::uint64_t xbits =
        (raw & 0x800fffffffffffffULL) | (exp << 52);
    double x;
    std::memcpy(&x, &xbits, sizeof x);
    const double y = kSimDivisors[i % 5];
    expect_exact(x, y);
  }
}

TEST(ExactDivisorTest, ExactOnEdgeValues) {
  for (const double y : kSimDivisors) {
    expect_exact(0.0, y);
    expect_exact(-0.0, y);
    expect_exact(y, y);
    expect_exact(-y, y);
    expect_exact(1.0, y);
    expect_exact(std::nextafter(y, 0.0), y);
    expect_exact(std::nextafter(y, 2.0 * y), y);
    expect_exact(65535.0, y);
    expect_exact(1.0e7, y);
    expect_exact(std::numeric_limits<double>::min(), y);
  }
}

TEST(ExactDivisorTest, RecordsDivisor) {
  constexpr ExactDivisor d(10.0e6);
  EXPECT_EQ(d.divisor(), 10.0e6);
}

}  // namespace
}  // namespace propane
