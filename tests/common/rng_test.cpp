#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace propane {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.bounded(1), 0u);
  }
}

TEST(Rng, BoundedZeroViolatesContract) {
  Rng rng(9);
  EXPECT_THROW(rng.bounded(0), ContractViolation);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all of -2..3 appear in 2000 draws
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(0);  // parent advanced: different child
  EXPECT_NE(child_a(), child_b());
}

TEST(Rng, ForkIsDeterministicInStateAndSalt) {
  Rng p1(55);
  Rng p2(55);
  Rng c1 = p1.fork(123);
  Rng c2 = p2.fork(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(c1(), c2());
  }
}

TEST(Rng, ForkSaltSeparatesStreams) {
  Rng p1(55);
  Rng p2(55);
  Rng c1 = p1.fork(1);
  Rng c2 = p2.fork(2);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(71);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.bounded(8)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 80);
  }
}

TEST(Rng, UniformRangeEndpoints) {
  Rng rng(73);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    ASSERT_GE(x, -5.0);
    ASSERT_LT(x, 5.0);
  }
  // Degenerate range returns the endpoint.
  EXPECT_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, SplitMix64KnownVector) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0x599ED017FB08FC85ULL);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace propane
