#include "common/contracts.hpp"

#include <gtest/gtest.h>

namespace propane {
namespace {

int checked_divide(int num, int den) {
  PROPANE_REQUIRE_MSG(den != 0, "division by zero");
  return num / den;
}

TEST(Contracts, PassingRequireIsSilent) {
  EXPECT_EQ(checked_divide(6, 2), 3);
}

TEST(Contracts, FailingRequireThrowsContractViolation) {
  EXPECT_THROW(checked_divide(1, 0), ContractViolation);
}

TEST(Contracts, MessageContainsExpressionAndHint) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("den != 0"), std::string::npos) << what;
    EXPECT_NE(what.find("division by zero"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, EnsureAndCheckThrowOnFailure) {
  EXPECT_THROW(PROPANE_ENSURE(false), ContractViolation);
  EXPECT_THROW(PROPANE_CHECK(false), ContractViolation);
  EXPECT_THROW(PROPANE_CHECK_MSG(false, "boom"), ContractViolation);
  EXPECT_NO_THROW(PROPANE_ENSURE(true));
  EXPECT_NO_THROW(PROPANE_CHECK(true));
}

TEST(Contracts, ViolationIsALogicError) {
  try {
    PROPANE_REQUIRE(false);
    FAIL();
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace propane
