#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.hpp"

namespace propane {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(0, visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) {
    ASSERT_EQ(v.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSubrange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10+11+...+19
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error must not be rethrown twice.
  pool.wait_idle();
}

TEST(ThreadPool, ReportsSuppressedExceptionCountAndFirstMessage) {
  // One worker => deterministic order: the first task's exception is the
  // one rethrown; the second is suppressed but must be counted and its
  // message preserved (it used to vanish entirely).
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first failure"); });
  pool.submit([] { throw std::runtime_error("second failure"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should have thrown";
  } catch (const TaskGroupError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("first failure"), std::string::npos) << message;
    EXPECT_NE(
        message.find("[+1 suppressed task exception(s); first suppressed: "
                     "second failure]"),
        std::string::npos)
        << message;
    EXPECT_EQ(e.suppressed_count(), 1u);
    EXPECT_EQ(e.first_suppressed_message(), "second failure");
  }
  // The counter resets with the error: the next failure reports cleanly.
  pool.submit([] { throw std::runtime_error("third failure"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should have thrown";
  } catch (const std::exception& e) {
    EXPECT_EQ(std::string(e.what()).find("suppressed"), std::string::npos);
  }
}

TEST(ThreadPool, SingleExceptionMessageStaysUnannotated) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("lone failure"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should have thrown";
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "lone failure");
  }
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillCompletesWork) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ThreadCountReportsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, NullTaskViolatesContract) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(ThreadPool, ExportsTaskMetricsWhenTelemetryAttached) {
  obs::MetricsRegistry metrics;
  obs::Telemetry telemetry;
  telemetry.metrics = &metrics;
  {
    ThreadPool pool(2, &telemetry);
    for (int i = 0; i < 10; ++i) {
      pool.submit([] {});
    }
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  }
  EXPECT_EQ(metrics.counter("pool.tasks.completed").value(), 10u);
  EXPECT_EQ(metrics.counter("pool.tasks.failed").value(), 1u);
  EXPECT_EQ(metrics.counter("pool.exceptions.suppressed").value(), 0u);
  // Every task's wall time was observed.
  EXPECT_EQ(metrics.snapshot().histograms.at("pool.task.latency_us").count,
            11u);
}

TEST(ThreadPool, CountsSuppressedExceptionsInMetrics) {
  obs::MetricsRegistry metrics;
  obs::Telemetry telemetry;
  telemetry.metrics = &metrics;
  ThreadPool pool(1, &telemetry);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  pool.submit([] { throw std::runtime_error("third"); });
  EXPECT_THROW(pool.wait_idle(), TaskGroupError);
  EXPECT_EQ(metrics.counter("pool.exceptions.suppressed").value(), 2u);
  EXPECT_EQ(metrics.counter("pool.tasks.failed").value(), 3u);
}

}  // namespace
}  // namespace propane
