#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace propane {
namespace {

TEST(Summary, MeanVarianceMinMax) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyMeanViolatesContract) {
  Summary s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.max(), ContractViolation);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto ci = wilson_interval(30, 100);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesLowerBoundIsZero) {
  const auto ci = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.2);
}

TEST(WilsonInterval, AllSuccessesUpperBoundIsOne) {
  const auto ci = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
  EXPECT_GT(ci.lo, 0.8);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonInterval, KnownValue) {
  // Wilson 95% CI for 8/10: approximately [0.49, 0.94].
  const auto ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.lo, 0.49, 0.01);
  EXPECT_NEAR(ci.hi, 0.943, 0.01);
}

TEST(WilsonInterval, ContractChecks) {
  EXPECT_THROW(wilson_interval(1, 0), ContractViolation);
  EXPECT_THROW(wilson_interval(5, 4), ContractViolation);
}

TEST(KendallTau, PerfectAgreement) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(kendall_tau_b(xs, ys), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{50, 40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(kendall_tau_b(xs, ys), -1.0);
}

TEST(KendallTau, KnownMixedValue) {
  // One discordant pair among C(4,2)=6: tau = (5-1)/6 = 2/3.
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{1, 2, 4, 3};
  EXPECT_NEAR(kendall_tau_b(xs, ys), 2.0 / 3.0, 1e-12);
}

TEST(KendallTau, AllTiedReturnsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{2, 3, 4};
  EXPECT_DOUBLE_EQ(kendall_tau_b(xs, ys), 0.0);
}

TEST(KendallTau, TiesReduceMagnitude) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 3, 4};
  const double tau = kendall_tau_b(xs, ys);
  EXPECT_GT(tau, 0.8);
  EXPECT_LT(tau, 1.0);
}

TEST(KendallTau, SizeContracts) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1};
  EXPECT_THROW(kendall_tau_b(xs, ys), ContractViolation);
  const std::vector<double> one{1};
  EXPECT_THROW(kendall_tau_b(one, one), ContractViolation);
}

TEST(FractionalRanks, SimpleOrder) {
  const std::vector<double> xs{30, 10, 20};
  const auto ranks = fractional_ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(FractionalRanks, TiesGetAverageRank) {
  const std::vector<double> xs{1, 2, 2, 3};
  const auto ranks = fractional_ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanRho, MonotoneNonlinearIsOne) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 4, 9, 16, 25};
  EXPECT_NEAR(spearman_rho(xs, ys), 1.0, 1e-12);
}

TEST(SpearmanRho, ReversedIsMinusOne) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{9, 4, 1};
  EXPECT_NEAR(spearman_rho(xs, ys), -1.0, 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.77);  // bin 3
  h.add(-5.0);  // clamped to bin 0
  h.add(5.0);   // clamped to bin 3
  h.add(1.0);   // hi edge clamps into last bin
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 3u);
}

TEST(Histogram, BinBounds) {
  Histogram h(0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 2.0);
}

TEST(Histogram, ContractChecks) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), ContractViolation);
}

}  // namespace
}  // namespace propane
