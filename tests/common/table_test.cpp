#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Module", "P"});
  t.add_row({"CALC", "0.223"});
  t.add_row({"V_REG", "0.9"});
  const std::string out = t.render();
  EXPECT_EQ(out,
            "Module |     P\n"
            "-------+------\n"
            "CALC   | 0.223\n"
            "V_REG  |   0.9\n");
}

TEST(TextTable, WidthGrowsWithCellContent) {
  TextTable t({"A", "B"});
  t.add_row({"a-very-long-cell", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a-very-long-cell"), std::string::npos);
  // Header is padded to the widest cell: the first line is as long as the
  // widest body line.
  const std::size_t header_len = out.find('\n');
  EXPECT_EQ(header_len, std::string("a-very-long-cell | x").size());
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + explicit separator.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("-\n"); pos != std::string::npos;
       pos = out.find("-\n", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTable, RowWidthMismatchViolatesContract) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, EmptyHeaderViolatesContract) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(TextTable, AlignmentOverride) {
  TextTable t({"N", "Name"});
  t.set_align(0, Align::kRight);
  t.set_align(1, Align::kLeft);
  t.add_row({"1", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("1 | x"), std::string::npos);
}

TEST(TextTable, MarkdownRendering) {
  TextTable t({"Module", "P"});
  t.add_row({"CALC", "0.223"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| Module |"), std::string::npos);
  EXPECT_NE(md.find("| CALC   |"), std::string::npos);
  EXPECT_NE(md.find("-:|"), std::string::npos);  // right-aligned numeric col
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"A", "B", "C"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace propane
