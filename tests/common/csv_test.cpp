#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace propane {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldWithSeparator) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_escape("a\rb"), "\"a\rb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"module", "p"});
  writer.write_row({"CALC", "0.223"});
  EXPECT_EQ(out.str(), "module,p\nCALC,0.223\n");
}

TEST(CsvWriter, EscapesWithinRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, EmptyRowProducesBlankLine) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({});
  EXPECT_EQ(out.str(), "\n");
}

}  // namespace
}  // namespace propane
