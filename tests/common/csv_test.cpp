#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"

namespace propane {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldWithSeparator) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_escape("a\rb"), "\"a\rb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"module", "p"});
  writer.write_row({"CALC", "0.223"});
  EXPECT_EQ(out.str(), "module,p\nCALC,0.223\n");
}

TEST(CsvWriter, EscapesWithinRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, EmptyRowProducesBlankLine) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({});
  EXPECT_EQ(out.str(), "\n");
}

TEST(ParseCsvRow, SplitsPlainFields) {
  const auto fields = parse_csv_row("a,b,,d");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
}

TEST(ParseCsvRow, UnquotesQuotedFields) {
  const auto fields = parse_csv_row("\"a,b\",c,\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(ParseCsvRow, InvertsCsvEscapeForArbitraryFields) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quotes\"", "", "a,\",b"};
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(fields);
  std::string line = out.str();
  line.pop_back();  // strip the trailing newline
  EXPECT_EQ(parse_csv_row(line), fields);
}

TEST(ParseCsvRow, UnterminatedQuoteViolatesContract) {
  EXPECT_THROW(parse_csv_row("\"never closed"), ContractViolation);
}

}  // namespace
}  // namespace propane
