// Worker protocol-loop tests (svc/worker.hpp), driven entirely through
// stringstreams: a worker fed scripted LEASE lines must journal exactly
// the leased ranges, answer DONE with honest counts, rebuild its session
// on rescan leases, and FAIL fast on a malformed dispatcher line.
//
// The toy campaign is the one from tests/store/resume_test.cpp: 4
// injections x 3 test cases = 12 runs over a two-signal bus.
#include "svc/worker.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/system_model.hpp"
#include "store/resume.hpp"
#include "svc/wire.hpp"

namespace propane::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

fi::TraceSet toy_run(const fi::RunRequest& request) {
  fi::SignalBus bus;
  const fi::BusSignalId src = bus.add_signal("src");
  const fi::BusSignalId dst = bus.add_signal("dst");
  std::optional<fi::InjectionDriver> injector;
  if (request.injection) {
    injector.emplace(bus, *request.injection, Rng(request.rng_seed));
  }
  fi::TraceRecorder recorder(bus);
  for (std::uint64_t ms = 0; ms < 10; ++ms) {
    bus.write(src, static_cast<std::uint16_t>(request.test_case * 100 + ms));
    if (injector) injector->maybe_fire(ms * sim::kMillisecond);
    bus.write(dst, static_cast<std::uint16_t>(bus.read(src) & 0xFFF0));
    recorder.sample();
  }
  return recorder.take();
}

fi::CampaignConfig toy_config() {
  fi::CampaignConfig config;
  config.test_case_count = 3;
  config.injections = {
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(0)},
      fi::InjectionSpec{0, 2 * sim::kMillisecond, fi::bit_flip(8)},
      fi::InjectionSpec{0, 4 * sim::kMillisecond, fi::bit_flip(12)},
      fi::InjectionSpec{0, 6 * sim::kMillisecond, fi::random_replacement()},
  };
  config.threads = 2;
  return config;
}

core::SystemModel toy_model() {
  core::SystemModelBuilder builder;
  builder.add_module("M", {"in"}, {"dst"});
  builder.add_system_input("src");
  builder.connect_system_input("src", "M", "in");
  builder.add_system_output("out", "M", "dst");
  return std::move(builder).build();
}

std::string journal_csv(const fs::path& dir) {
  const core::SystemModel model = toy_model();
  const fi::SignalBinding binding =
      fi::SignalBinding::by_name(model, {"src", "dst"});
  std::ostringstream out;
  store::write_permeability_csv_from_journal(out, dir, model, binding);
  return out.str();
}

WorkerConfig worker_config(const fs::path& dir, std::uint32_t id = 0) {
  WorkerConfig worker;
  worker.worker_id = id;
  worker.journal_dir = dir;
  return worker;
}

std::vector<std::string> output_lines(const std::ostringstream& out) {
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Parses an output line and returns it as a DoneMsg, failing the test on
/// anything else.
DoneMsg expect_done(const std::string& line) {
  const auto parsed = parse_wire(line);
  EXPECT_TRUE(parsed.has_value()) << line;
  if (!parsed || !std::holds_alternative<DoneMsg>(*parsed)) {
    ADD_FAILURE() << "expected DONE, got: " << line;
    return DoneMsg{};
  }
  return std::get<DoneMsg>(*parsed);
}

TEST(Worker, ExecutesLeasedRangesAndReportsDone) {
  const fs::path dir = fresh_dir("worker_basic");
  std::istringstream in("LEASE 1 0 6 0\nLEASE 2 6 12 0\nSHUTDOWN\n");
  std::ostringstream out;
  WorkerSummary summary;
  const int code = run_worker_loop(toy_run, toy_config(),
                                   worker_config(dir, 3), in, out, &summary);
  EXPECT_EQ(code, 0);

  const std::vector<std::string> lines = output_lines(out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("HELLO 3 ", 0), 0u) << lines[0];
  EXPECT_EQ(expect_done(lines[1]).executed, 6u);
  EXPECT_EQ(expect_done(lines[2]).executed, 6u);
  EXPECT_EQ(summary.leases, 2u);
  EXPECT_EQ(summary.executed, 12u);

  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, 12u);
  EXPECT_EQ(state.duplicate_count, 0u);
}

TEST(Worker, LeasedCampaignMatchesSingleProcessByteForByte) {
  const fs::path reference = fresh_dir("worker_ref");
  store::run_journaled_campaign(toy_run, toy_config(), reference);

  const fs::path dir = fresh_dir("worker_leased");
  std::istringstream in("LEASE 1 0 5 0\nLEASE 2 5 12 0\nSHUTDOWN\n");
  std::ostringstream out;
  ASSERT_EQ(run_worker_loop(toy_run, toy_config(), worker_config(dir), in,
                            out, nullptr),
            0);
  EXPECT_EQ(journal_csv(dir), journal_csv(reference));
}

TEST(Worker, RescanLeaseSkipsRunsAlreadyJournaled) {
  const fs::path dir = fresh_dir("worker_rescan");
  // Lease 2 re-covers the whole plan with rescan=1, as the dispatcher does
  // after a worker death: the rebuilt session must skip the 6 runs lease 1
  // already journaled and execute only the missing 6.
  std::istringstream in("LEASE 1 0 6 0\nLEASE 2 0 12 1\nSHUTDOWN\n");
  std::ostringstream out;
  WorkerSummary summary;
  ASSERT_EQ(run_worker_loop(toy_run, toy_config(), worker_config(dir), in,
                            out, &summary),
            0);

  const std::vector<std::string> lines = output_lines(out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(expect_done(lines[1]).executed, 6u);
  EXPECT_EQ(expect_done(lines[2]).executed, 6u);

  const store::CampaignDirState state = store::scan_campaign_dir(dir);
  EXPECT_EQ(state.completed_count, 12u);
  EXPECT_EQ(state.duplicate_count, 0u);

  const fs::path reference = fresh_dir("worker_rescan_ref");
  store::run_journaled_campaign(toy_run, toy_config(), reference);
  EXPECT_EQ(journal_csv(dir), journal_csv(reference));
}

TEST(Worker, MalformedDispatcherLineFailsFast) {
  const fs::path dir = fresh_dir("worker_malformed");
  std::istringstream in("BOGUS LINE\n");
  std::ostringstream out;
  EXPECT_EQ(
      run_worker_loop(toy_run, toy_config(), worker_config(dir), in, out),
      1);
  const std::vector<std::string> lines = output_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].rfind("FAIL 0 ", 0), 0u) << lines[1];
}

TEST(Worker, DispatcherEofIsACleanExit) {
  const fs::path dir = fresh_dir("worker_eof");
  std::istringstream in;  // dispatcher died before sending anything
  std::ostringstream out;
  EXPECT_EQ(
      run_worker_loop(toy_run, toy_config(), worker_config(dir), in, out),
      0);
  EXPECT_EQ(output_lines(out).size(), 1u);  // just the HELLO
}

}  // namespace
}  // namespace propane::svc
