// Wire-protocol round-trip and rejection tests (svc/wire.hpp). The
// protocol is one line per message; parse(format(m)) must reproduce m
// exactly, and anything else must parse to nullopt rather than a
// half-understood message.
#include "svc/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

namespace propane::svc {
namespace {

TEST(Wire, RoundTripsEveryMessageType) {
  const std::vector<WireMessage> messages = {
      HelloMsg{3, 12345},
      LeaseMsg{7, 0, 250, false},
      LeaseMsg{8, 250, 500, true},
      DoneMsg{7, 250, 41},
      FailMsg{9, "journal manifest mismatch (out/j): expected plan ..."},
      ShutdownMsg{},
  };
  for (const WireMessage& message : messages) {
    const std::string line = format_wire(message);
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    const auto parsed = parse_wire(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE(*parsed == message) << line;
  }
}

TEST(Wire, FailMessageSurvivesSpacesAndFlattensNewlines) {
  const auto parsed =
      parse_wire(format_wire(FailMsg{2, "first line\nsecond line"}));
  ASSERT_TRUE(parsed.has_value());
  const FailMsg& fail = std::get<FailMsg>(*parsed);
  EXPECT_EQ(fail.lease_id, 2u);
  EXPECT_EQ(fail.message, "first line second line");
}

TEST(Wire, EmptyFailMessageRoundTrips) {
  const auto parsed = parse_wire("FAIL 5 ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<FailMsg>(*parsed).message, "");
}

TEST(Wire, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "NOP",
      "HELLO",                  // missing fields
      "HELLO 1",                // missing pid
      "HELLO 1 2 3",            // trailing garbage
      "HELLO one 2",            // non-numeric
      "LEASE 1 0 10",           // missing rescan
      "LEASE 1 0 10 2",         // rescan out of range
      "LEASE 1 0 10 0 extra",   // trailing garbage
      "DONE 1 2",               // missing diverged
      "DONE 1 2 3 4",           // trailing garbage
      "FAIL",                   // missing lease id
      "FAIL x oops",            // non-numeric lease id
      "SHUTDOWN now",           // trailing garbage
      "lease 1 0 10 0",         // verbs are case-sensitive
      "HELLO  1 2",             // doubled space makes an empty token
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_wire(line).has_value()) << "'" << line << "'";
  }
}

}  // namespace
}  // namespace propane::svc
