// Wire-protocol round-trip and rejection tests (svc/wire.hpp). The
// protocol is one line per message; parse(format(m)) must reproduce m
// exactly, anything malformed must parse to nullopt rather than a
// half-understood message, and unknown *trailing* tokens on fixed-field
// messages must be ignored (forward compatibility with newer peers).
#include "svc/wire.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <variant>
#include <vector>

namespace propane::svc {
namespace {

TEST(Wire, RoundTripsEveryMessageType) {
  const std::vector<WireMessage> messages = {
      HelloMsg{3, 12345, 0},
      HelloMsg{4, 999, 187654321},
      LeaseMsg{7, 0, 250, false, 0, 0},
      LeaseMsg{8, 250, 500, true, 0xDEADBEEF12345678ull, 42},
      DoneMsg{7, 250, 41, 0},
      DoneMsg{8, 250, 41, 42},
      FailMsg{9, 0, "journal manifest mismatch (out/j): expected plan ..."},
      FailMsg{9, 42, ""},
      ShutdownMsg{},
  };
  for (const WireMessage& message : messages) {
    const std::string line = format_wire(message);
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    const auto parsed = parse_wire(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE(*parsed == message) << line;
  }
}

TEST(Wire, TraceFieldsAreOptionalOnParse) {
  // Lines from a peer predating the trace context still parse, with the
  // trace fields defaulting to zero.
  const auto hello = parse_wire("HELLO 3 12345");
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(std::get<HelloMsg>(*hello) == (HelloMsg{3, 12345, 0}));

  const auto lease = parse_wire("LEASE 7 0 250 0");
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(std::get<LeaseMsg>(*lease) == (LeaseMsg{7, 0, 250, false, 0, 0}));

  const auto done = parse_wire("DONE 7 250 41");
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(std::get<DoneMsg>(*done) == (DoneMsg{7, 250, 41, 0}));
}

TEST(Wire, IgnoresUnknownTrailingTokens) {
  // A future peer may append fields this version has never heard of; the
  // known prefix must still parse (FAIL excepted -- free-text tail).
  const auto hello = parse_wire("HELLO 1 2 3 future 9");
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(std::get<HelloMsg>(*hello) == (HelloMsg{1, 2, 3}));

  const auto lease = parse_wire("LEASE 1 0 10 0 5 6 opaque");
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(std::get<LeaseMsg>(*lease) == (LeaseMsg{1, 0, 10, false, 5, 6}));

  const auto done = parse_wire("DONE 1 2 3 4 5");
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(std::get<DoneMsg>(*done) == (DoneMsg{1, 2, 3, 4}));

  EXPECT_TRUE(parse_wire("SHUTDOWN now").has_value());
}

TEST(Wire, FailMessageSurvivesSpacesAndFlattensControlChars) {
  const auto parsed =
      parse_wire(format_wire(FailMsg{2, 7, "first line\nsecond\tline\x01!"}));
  ASSERT_TRUE(parsed.has_value());
  const FailMsg& fail = std::get<FailMsg>(*parsed);
  EXPECT_EQ(fail.lease_id, 2u);
  EXPECT_EQ(fail.span_id, 7u);
  EXPECT_EQ(fail.message, "first line second line !");
}

TEST(Wire, EmptyFailMessageRoundTrips) {
  const auto parsed = parse_wire("FAIL 5 0 ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<FailMsg>(*parsed).message, "");
}

TEST(Wire, RejectsControlCharactersInFailMessage) {
  // A peer that skipped format_wire's flattening must not desync or poison
  // the log: embedded control bytes are a protocol error.
  const char* bad[] = {
      "FAIL 1 0 oops\ttab",
      "FAIL 1 0 bell\x07!",
      "FAIL 1 0 \x1b[31mred\x1b[0m",
      "FAIL 1 0 split\rline",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_wire(line).has_value()) << "'" << line << "'";
  }
}

TEST(Wire, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "NOP",
      "HELLO",                  // missing fields
      "HELLO 1",                // missing pid
      "HELLO one 2",            // non-numeric
      "HELLO 1 2 x",            // known optional field must be numeric
      "LEASE 1 0 10",           // missing rescan
      "LEASE 1 0 10 2",         // rescan out of range
      "LEASE 1 0 10 0 x",       // non-numeric trace id
      "LEASE 1 0 10 0 5 x",     // non-numeric span id
      "DONE 1 2",               // missing diverged
      "DONE 1 2 3 x",           // non-numeric span id
      "FAIL",                   // missing lease id
      "FAIL 1",                 // missing span id
      "FAIL x 0 oops",          // non-numeric lease id
      "FAIL 1 x oops",          // non-numeric span id
      "lease 1 0 10 0",         // verbs are case-sensitive
      "HELLO  1 2",             // doubled space makes an empty token
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_wire(line).has_value()) << "'" << line << "'";
  }
}

// Fuzz-ish property test: every message assembled from random field values
// and random printable FAIL payloads must round-trip exactly. Seeded, so a
// failure reproduces; 512 iterations keep it well under a millisecond.
TEST(Wire, RandomizedRoundTripProperty) {
  std::mt19937_64 rng(0xF1E2D3C4B5A69788ull);
  const auto u64 = [&rng] { return rng(); };
  const auto u32 = [&rng] { return static_cast<std::uint32_t>(rng()); };
  const auto printable_payload = [&rng](std::size_t max_len) {
    std::uniform_int_distribution<int> ch(0x20, 0x7e);  // space..tilde
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    std::string text(len(rng), ' ');
    for (char& c : text) c = static_cast<char>(ch(rng));
    return text;
  };

  for (int i = 0; i < 512; ++i) {
    std::vector<WireMessage> messages = {
        HelloMsg{u32(), static_cast<std::int64_t>(u64() >> 1), u64()},
        LeaseMsg{u64(), u64(), u64(), (u32() & 1) == 1, u64(), u64()},
        DoneMsg{u64(), u64(), u64(), u64()},
        FailMsg{u64(), u64(), printable_payload(80)},
        ShutdownMsg{},
    };
    for (const WireMessage& message : messages) {
      const std::string line = format_wire(message);
      const auto parsed = parse_wire(line);
      ASSERT_TRUE(parsed.has_value()) << line;
      EXPECT_TRUE(*parsed == message) << line;
    }
  }
}

}  // namespace
}  // namespace propane::svc
