// Bounded admission queue tests (svc/queue.hpp): capacity enforcement,
// retry-after hints, FIFO order and the throughput EWMA behind the hints.
#include "svc/queue.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::svc {
namespace {

TEST(Queue, AcceptsUntilCapacityThenRejectsWithRetryAfter) {
  CampaignQueue queue(2, /*default_runs_per_second=*/100.0);
  const EnqueueDecision a = queue.try_enqueue("a", 1000);
  const EnqueueDecision b = queue.try_enqueue("b", 1000);
  EXPECT_TRUE(a.accepted);
  EXPECT_TRUE(b.accepted);
  EXPECT_NE(a.id, b.id);

  const EnqueueDecision rejected = queue.try_enqueue("c", 1000);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GT(rejected.retry_after_seconds, 0.0);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(Queue, PopsInAdmissionOrderAndFreesASlot) {
  CampaignQueue queue(1);
  queue.try_enqueue("first", 10);
  const auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->label, "first");
  // The slot freed at pop; the next admission succeeds even while "first"
  // is still in flight.
  EXPECT_TRUE(queue.try_enqueue("second", 10).accepted);
  EXPECT_FALSE(queue.pop()->label.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(Queue, RetryAfterReflectsInFlightCampaign) {
  CampaignQueue queue(1, /*default_runs_per_second=*/100.0);
  queue.try_enqueue("big", 100000);
  queue.pop();  // 100000 runs in flight at 100 runs/s => ~1000s
  queue.try_enqueue("waiting", 10);
  const EnqueueDecision rejected = queue.try_enqueue("late", 10);
  ASSERT_FALSE(rejected.accepted);
  EXPECT_GE(rejected.retry_after_seconds, 900.0);
}

TEST(Queue, CompletionFoldsObservedThroughputIntoTheEwma) {
  CampaignQueue queue(4, /*default_runs_per_second=*/100.0);
  queue.try_enqueue("a", 1000);
  queue.pop();
  queue.record_completion(/*executed_runs=*/1000, /*wall_seconds=*/1.0);
  // alpha 0.3: 0.7 * 100 + 0.3 * 1000 = 370
  EXPECT_NEAR(queue.runs_per_second(), 370.0, 1e-9);

  // Zero-executed completions (fully resumed campaigns) carry no signal.
  queue.try_enqueue("b", 1000);
  queue.pop();
  queue.record_completion(0, 1.0);
  EXPECT_NEAR(queue.runs_per_second(), 370.0, 1e-9);
}

TEST(Queue, BacklogCountsInFlightAndWaitingWork) {
  CampaignQueue queue(4, /*default_runs_per_second=*/100.0);
  EXPECT_EQ(queue.backlog_seconds(), 0.0);
  queue.try_enqueue("a", 500);
  queue.try_enqueue("b", 500);
  EXPECT_NEAR(queue.backlog_seconds(), 10.0, 1e-9);
  queue.pop();  // "a" now in flight, still part of the backlog
  EXPECT_NEAR(queue.backlog_seconds(), 10.0, 1e-9);
  queue.record_completion(500, 5.0);
  EXPECT_LT(queue.backlog_seconds(), 10.0);
}

TEST(Queue, ZeroCapacityViolatesContract) {
  EXPECT_THROW(CampaignQueue(0), ContractViolation);
}

}  // namespace
}  // namespace propane::svc
