// Lease-log durability tests (svc/lease_log.hpp), mirroring the journal
// torn-tail suite in tests/store/journal_test.cpp: a write-scan round
// trip, crash residue at the tail (skip + warning), and mid-file
// corruption (hard error).
#include "svc/lease_log.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"

namespace propane::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

LeaseCampaignInfo toy_campaign() {
  return LeaseCampaignInfo{0xfeedbeefu, 42u, 120u, 30u};
}

/// A log with three grants: #1 completed, #2 requeued, #3 in flight.
fs::path write_toy_log(const fs::path& dir) {
  const fs::path path = LeaseLogWriter::next_log_path(dir);
  LeaseLogWriter writer(path, toy_campaign());
  writer.grant(LeaseGrant{1, 0, 30, 0, false});
  writer.grant(LeaseGrant{2, 30, 60, 1, false});
  writer.complete(LeaseComplete{1, 30, 4});
  writer.requeue(2);
  writer.grant(LeaseGrant{3, 30, 60, 0, true});
  return path;
}

TEST(LeaseLog, WriteScanRoundTripAndOutstanding) {
  const fs::path dir = fresh_dir("lease_roundtrip");
  const fs::path path = write_toy_log(dir);

  const LeaseLogScan scan = scan_lease_log(path);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_EQ(scan.campaign, toy_campaign());
  ASSERT_EQ(scan.grants.size(), 3u);
  EXPECT_EQ(scan.grants[0], (LeaseGrant{1, 0, 30, 0, false}));
  EXPECT_EQ(scan.grants[2], (LeaseGrant{3, 30, 60, 0, true}));
  ASSERT_EQ(scan.completions.size(), 1u);
  EXPECT_EQ(scan.completions[0], (LeaseComplete{1, 30, 4}));
  ASSERT_EQ(scan.requeues.size(), 1u);
  EXPECT_EQ(scan.requeues[0], 2u);

  const std::vector<LeaseGrant> open = scan.outstanding();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].lease_id, 3u);
}

TEST(LeaseLog, TornTailFrameIsSkippedWithWarning) {
  const fs::path dir = fresh_dir("lease_torn");
  const fs::path path = write_toy_log(dir);

  // Crash mid-append: a frame header that promises more bytes than follow.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char partial[] = {0x40, 0x00, 0x00, 0x00, 0x01, 0x02};
    out.write(partial, sizeof(partial));
  }
  const LeaseLogScan scan = scan_lease_log(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.warning.empty());
  // Everything before the torn frame survives.
  ASSERT_TRUE(scan.has_campaign);
  EXPECT_EQ(scan.grants.size(), 3u);
  EXPECT_EQ(scan.completions.size(), 1u);
  EXPECT_EQ(scan.outstanding().size(), 1u);
}

TEST(LeaseLog, MidFileCorruptionIsAHardError) {
  const fs::path dir = fresh_dir("lease_corrupt");
  const fs::path path = write_toy_log(dir);

  // Flip a byte inside the campaign frame's payload (well past the header,
  // well before the tail): the frame is complete, so its CRC must catch it.
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(25);
    char byte = 0;
    file.get(byte);
    file.seekp(25);
    file.put(static_cast<char>(byte ^ 0x01));
  }
  EXPECT_THROW(scan_lease_log(path), ContractViolation);
}

TEST(LeaseLog, UnknownRecordTypeIsAHardError) {
  const fs::path dir = fresh_dir("lease_unknown");
  const fs::path path = write_toy_log(dir);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::uint8_t payload[] = {99};
    ByteWriter frame;
    frame.u32(1);
    frame.u32(crc32(payload, 1));
    frame.u8(99);
    const auto bytes = std::move(frame).take();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(scan_lease_log(path), ContractViolation);
}

TEST(LeaseLog, HeaderOnlyFileScansAsTornTail) {
  const fs::path dir = fresh_dir("lease_headless");
  const fs::path path = write_toy_log(dir);
  fs::resize_file(path, 12);  // magic + version, no campaign frame yet
  const LeaseLogScan scan = scan_lease_log(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.has_campaign);
  EXPECT_FALSE(scan.warning.empty());
}

TEST(LeaseLog, NextLogPathNumbersPastExistingLogs) {
  const fs::path dir = fresh_dir("lease_numbering");
  const fs::path first = LeaseLogWriter::next_log_path(dir);
  EXPECT_EQ(first.filename(), "lease-000000.pll");
  { LeaseLogWriter writer(first, toy_campaign()); }
  const fs::path second = LeaseLogWriter::next_log_path(dir);
  EXPECT_EQ(second.filename(), "lease-000001.pll");
  { LeaseLogWriter writer(second, toy_campaign()); }

  const auto logs = LeaseLogWriter::list_logs(dir);
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[0].filename(), "lease-000000.pll");
  EXPECT_EQ(logs[1].filename(), "lease-000001.pll");
}

TEST(LeaseLog, WriterRefusesAnExistingPath) {
  const fs::path dir = fresh_dir("lease_exists");
  const fs::path path = write_toy_log(dir);
  EXPECT_THROW(LeaseLogWriter(path, toy_campaign()), ContractViolation);
}

}  // namespace
}  // namespace propane::svc
