#include "arrestment/testcase.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace propane::arr {
namespace {

TEST(TestCases, PaperGridIs25Cases) {
  const auto cases = paper_test_cases();
  EXPECT_EQ(cases.size(), 25u);
}

TEST(TestCases, GridCoversTheRangesInclusive) {
  const auto cases = grid_test_cases(5, 5);
  double min_mass = 1e9, max_mass = 0, min_v = 1e9, max_v = 0;
  for (const TestCase& tc : cases) {
    min_mass = std::min(min_mass, tc.mass_kg);
    max_mass = std::max(max_mass, tc.mass_kg);
    min_v = std::min(min_v, tc.velocity_mps);
    max_v = std::max(max_v, tc.velocity_mps);
  }
  EXPECT_DOUBLE_EQ(min_mass, kMassMinKg);
  EXPECT_DOUBLE_EQ(max_mass, kMassMaxKg);
  EXPECT_DOUBLE_EQ(min_v, kVelocityMinMps);
  EXPECT_DOUBLE_EQ(max_v, kVelocityMaxMps);
}

TEST(TestCases, GridIsUniformlySpaced) {
  const auto cases = grid_test_cases(1, 5);
  ASSERT_EQ(cases.size(), 5u);
  for (std::size_t i = 1; i < cases.size(); ++i) {
    EXPECT_NEAR(cases[i].velocity_mps - cases[i - 1].velocity_mps, 10.0,
                1e-9);
  }
}

TEST(TestCases, SingletonGridUsesMidpoint) {
  const auto cases = grid_test_cases(1, 1);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_DOUBLE_EQ(cases[0].mass_kg, (kMassMinKg + kMassMaxKg) / 2);
  EXPECT_DOUBLE_EQ(cases[0].velocity_mps,
                   (kVelocityMinMps + kVelocityMaxMps) / 2);
}

TEST(TestCases, NamesAreDistinct) {
  const auto cases = paper_test_cases();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    for (std::size_t j = i + 1; j < cases.size(); ++j) {
      EXPECT_NE(cases[i].name(), cases[j].name());
    }
  }
  EXPECT_EQ(TestCase{}.name(), "14.0t@60mps");
}

TEST(TestCases, EmptyGridViolatesContract) {
  EXPECT_THROW(grid_test_cases(0, 1), ContractViolation);
  EXPECT_THROW(grid_test_cases(1, 0), ContractViolation);
}

}  // namespace
}  // namespace propane::arr
