// Physical plausibility properties of the closed-loop arrestment, swept
// over the workload envelope.
#include <gtest/gtest.h>

#include "arrestment/constants.hpp"
#include "arrestment/system.hpp"
#include "arrestment/twonode.hpp"

namespace propane::arr {
namespace {

class PhysicsSweep : public ::testing::TestWithParam<double> {};

TEST_P(PhysicsSweep, StopDistanceGrowsWithVelocity) {
  const double mass = 14000.0;
  const RunOutcome slower =
      run_arrestment(TestCase{mass, GetParam() - 10.0});
  const RunOutcome faster = run_arrestment(TestCase{mass, GetParam()});
  ASSERT_TRUE(slower.arrested);
  ASSERT_TRUE(faster.arrested);
  EXPECT_GT(faster.stop_distance_m, slower.stop_distance_m);
}

TEST_P(PhysicsSweep, PulseCountMatchesPayoutDistance) {
  const RunOutcome outcome = run_arrestment(TestCase{12000, GetParam()});
  ASSERT_TRUE(outcome.arrested);
  const double pulses = outcome.trace.value(
      outcome.trace.sample_count() - 1, 6 /* pulscnt */);
  EXPECT_NEAR(pulses * kMetersPerPulse, outcome.stop_distance_m,
              outcome.stop_distance_m * 0.01 + 1.0);
}

TEST_P(PhysicsSweep, DecelerationStaysWithinTheLoadEnvelope) {
  for (double mass : {8000.0, 14000.0, 20000.0}) {
    const RunOutcome outcome = run_arrestment(TestCase{mass, GetParam()});
    EXPECT_LE(outcome.peak_decel, kMaxDecel * 1.2)
        << mass << " kg @ " << GetParam();
  }
}

TEST_P(PhysicsSweep, TwoNodeStopsWithinTheSameEnvelope) {
  // Both configurations command the same SetValue; the two half-force
  // channels of the distributed variant must arrest comparably.
  const TestCase tc{14000, GetParam()};
  const RunOutcome one = run_arrestment(tc);
  const RunOutcome two = run_two_node_arrestment(tc);
  ASSERT_TRUE(one.arrested);
  ASSERT_TRUE(two.arrested);
  EXPECT_NEAR(two.stop_distance_m, one.stop_distance_m,
              0.15 * one.stop_distance_m + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Velocities, PhysicsSweep,
                         ::testing::Values(50.0, 60.0, 70.0, 80.0));

}  // namespace
}  // namespace propane::arr
