#include "arrestment/model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "arrestment/signals.hpp"
#include "core/backtrack_tree.hpp"
#include "core/propagation_path.hpp"
#include "core/trace_tree.hpp"

namespace propane::arr {
namespace {

using core::SystemModel;

class ArrestmentModelTest : public ::testing::Test {
 protected:
  SystemModel model_ = make_arrestment_model();
};

TEST_F(ArrestmentModelTest, TwentyFiveIoPairs) {
  // Section 8: "In the target system, we have 25 input/output pairs".
  EXPECT_EQ(model_.io_pair_count(), 25u);
}

TEST_F(ArrestmentModelTest, SixModulesFourInputsOneOutput) {
  EXPECT_EQ(model_.module_count(), 6u);
  EXPECT_EQ(model_.system_input_count(), 4u);  // PACNT, TIC1, TCNT, ADC
  EXPECT_EQ(model_.system_output_count(), 1u);  // TOC2
}

TEST_F(ArrestmentModelTest, PairCountsPerModuleMatchFig8) {
  auto pairs = [&](const char* name) {
    const auto id = *model_.find_module(name);
    return model_.module(id).input_count() *
           model_.module(id).output_count();
  };
  EXPECT_EQ(pairs("CLOCK"), 2u);
  EXPECT_EQ(pairs("DIST_S"), 9u);
  EXPECT_EQ(pairs("PRES_S"), 1u);
  EXPECT_EQ(pairs("CALC"), 10u);
  EXPECT_EQ(pairs("V_REG"), 2u);
  EXPECT_EQ(pairs("PRES_A"), 1u);
}

TEST_F(ArrestmentModelTest, FeedbacksAreClockSlotAndCalcI) {
  // The two feedback loops of Fig. 10.
  const auto clock = *model_.find_module("CLOCK");
  const auto calc = *model_.find_module("CALC");
  const auto& slot_src = model_.input_source(
      core::InputRef{clock, *model_.find_input(clock, "ms_slot_nbr")});
  EXPECT_EQ(slot_src.kind, core::SourceKind::kModuleOutput);
  EXPECT_EQ(slot_src.output.module, clock);
  const auto& i_src = model_.input_source(
      core::InputRef{calc, *model_.find_input(calc, "i")});
  EXPECT_EQ(i_src.kind, core::SourceKind::kModuleOutput);
  EXPECT_EQ(i_src.output.module, calc);
}

TEST_F(ArrestmentModelTest, BacktrackTreeOfToc2Has22Paths) {
  // Section 8: "From the backtrack tree in Fig. 10, we can generate 22
  // propagation paths". The count is structural (zero-weight edges are
  // kept), so any permeability assignment yields it.
  core::SystemPermeability permeability(model_);
  const auto tree = core::build_backtrack_tree(model_, permeability, 0);
  EXPECT_EQ(core::backtrack_paths(tree).size(), 22u);
}

TEST_F(ArrestmentModelTest, BacktrackTreeHasTheTwoFeedbackLeafKinds) {
  // Fig. 10: "we have a special relation between the leaves for
  // ms_slot_nbr and for i and their respective parent".
  core::SystemPermeability permeability(model_);
  const auto tree = core::build_backtrack_tree(model_, permeability, 0);
  std::set<std::string> feedback_signals;
  for (const auto& node : tree.nodes()) {
    if (node.kind == core::TreeNode::Kind::kInput && node.feedback_break) {
      feedback_signals.insert(
          model_.signal_name(model_.input_source(node.input)));
    }
  }
  EXPECT_EQ(feedback_signals,
            (std::set<std::string>{"ms_slot_nbr", "i"}));
}

TEST_F(ArrestmentModelTest, TraceTreeForAdcFollowsFig11) {
  // Fig. 11: ADC -> InValue -> OutValue -> TOC2, a single chain.
  core::SystemPermeability permeability(model_);
  const auto adc = *model_.find_system_input("ADC");
  const auto tree = core::build_trace_tree(model_, permeability, adc);
  const auto paths = core::trace_paths(tree);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(core::format_path(model_, tree, paths[0]),
            "ADC -> InValue -> OutValue -> TOC2");
}

TEST_F(ArrestmentModelTest, TraceTreeForPacntFollowsFig12) {
  core::SystemPermeability permeability(model_);
  const auto pacnt = *model_.find_system_input("PACNT");
  const auto tree = core::build_trace_tree(model_, permeability, pacnt);
  const auto paths = core::trace_paths(tree);
  // Three DIST_S outputs x (direct SetValue + via-i SetValue) = 6 paths to
  // TOC2.
  EXPECT_EQ(paths.size(), 6u);
  // Fig. 12: "we do not have a child node from i that is i itself" --
  // verified by the cycle-freedom of every root path.
  for (const auto& path : paths) {
    std::set<std::pair<core::ModuleId, core::PortIndex>> outputs;
    for (const auto index : path.nodes) {
      const auto& node = tree.node(index);
      if (node.kind != core::TreeNode::Kind::kOutput) continue;
      EXPECT_TRUE(
          outputs.insert({node.output.module, node.output.port}).second);
    }
  }
}

TEST_F(ArrestmentModelTest, BindingCoversAllSignalsAndMatchesBusOrder) {
  const fi::SignalBinding binding = make_arrestment_binding(model_);
  EXPECT_EQ(binding.size(), model_.all_signals().size());
  // Spot checks against the canonical bus order in signals.hpp.
  EXPECT_EQ(binding.bus_for(core::SignalRef::from_system_input(
                *model_.find_system_input("PACNT"))),
            0u);
  const auto presa = *model_.find_module("PRES_A");
  EXPECT_EQ(binding.bus_for(core::SignalRef::from_output(
                core::OutputRef{presa, 0})),
            13u);  // TOC2 is the last canonical signal
}

TEST_F(ArrestmentModelTest, ThirteenInjectionTargets) {
  // Every signal except TOC2 drives some module input.
  const auto targets = injection_target_bus_ids();
  EXPECT_EQ(targets.size(), 13u);
  fi::SignalBus bus;
  const BusMap map = build_bus(bus);
  for (const auto target : targets) {
    EXPECT_NE(target, map.toc2);
  }
}

TEST_F(ArrestmentModelTest, ModelSignalNamesMatchBusNames) {
  fi::SignalBus bus;
  build_bus(bus);
  for (const auto& signal : model_.all_signals()) {
    EXPECT_TRUE(bus.find(model_.signal_name(signal)).has_value())
        << model_.signal_name(signal);
  }
}

}  // namespace
}  // namespace propane::arr
