// Unit tests for the six control modules, each driven directly on a bus.
#include <gtest/gtest.h>

#include "arrestment/calc.hpp"
#include "arrestment/clock_module.hpp"
#include "arrestment/constants.hpp"
#include "arrestment/dist_s.hpp"
#include "arrestment/pres_a.hpp"
#include "arrestment/pres_s.hpp"
#include "arrestment/v_reg.hpp"

namespace propane::arr {
namespace {

class ModulesTest : public ::testing::Test {
 protected:
  ModulesTest() : map_(build_bus(bus_)) {}

  fi::SignalBus bus_;
  BusMap map_;
};

// --- CLOCK -----------------------------------------------------------------

TEST_F(ModulesTest, ClockCountsMillisecondsAndSlots) {
  ClockModule clock(map_);
  for (int t = 1; t <= 15; ++t) {
    clock.step(bus_);
    EXPECT_EQ(bus_.read(map_.mscnt), t);
    EXPECT_EQ(bus_.read(map_.ms_slot_nbr), (t - 1) % kSlotCount);
  }
}

TEST_F(ModulesTest, ClockSlotErrorPersists) {
  ClockModule clock(map_);
  clock.step(bus_);  // slot 0
  bus_.poke(map_.ms_slot_nbr, 5);
  clock.step(bus_);
  EXPECT_EQ(bus_.read(map_.ms_slot_nbr), 6u);  // phase shifted for good
  clock.step(bus_);
  EXPECT_EQ(bus_.read(map_.ms_slot_nbr), 0u);
}

TEST_F(ModulesTest, ClockSlotRecoversModuloRangeEvenFromWildValues) {
  ClockModule clock(map_);
  bus_.poke(map_.ms_slot_nbr, 65000);
  clock.step(bus_);
  EXPECT_LT(bus_.read(map_.ms_slot_nbr), kSlotCount);
}

// --- DIST_S ----------------------------------------------------------------

TEST_F(ModulesTest, DistSAccumulatesPulseDeltas) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 10);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.pulscnt), 10u);
  bus_.write(map_.pacnt, 17);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.pulscnt), 17u);
}

TEST_F(ModulesTest, DistSHandlesPacntWrap) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 65530);
  dist.step(bus_);
  bus_.write(map_.pacnt, 4);  // +10 across the wrap
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.pulscnt),
            static_cast<std::uint16_t>(65530 + 10));
}

TEST_F(ModulesTest, DistSPulscntErrorPersists) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 5);
  dist.step(bus_);
  bus_.poke(map_.pulscnt, 1000);  // corrupt the shared accumulator
  bus_.write(map_.pacnt, 8);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.pulscnt), 1003u);  // error carried forward
}

TEST_F(ModulesTest, DistSSlowSpeedAfterPulseGap) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 1);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.slow_speed), 0u);
  for (int t = 0; t < 12; ++t) dist.step(bus_);  // 12 quiet ticks
  EXPECT_EQ(bus_.read(map_.slow_speed), 0u);
  dist.step(bus_);  // 13th
  EXPECT_EQ(bus_.read(map_.slow_speed), 1u);
}

TEST_F(ModulesTest, DistSTimerPathFlagsSlowEarlier) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 1);
  dist.step(bus_);
  // One quiet tick plus a large capture/timer distance.
  bus_.write(map_.tcnt, 30000);
  bus_.write(map_.tic1, 1000);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.slow_speed), 1u);
}

TEST_F(ModulesTest, DistSStoppedAfterLongGap) {
  DistSModule dist(map_);
  bus_.write(map_.pacnt, 1);
  dist.step(bus_);
  for (std::uint32_t t = 0; t < kStoppedGapMs - 1; ++t) dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.stopped), 0u);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.stopped), 1u);
  // A new pulse clears both flags.
  bus_.write(map_.pacnt, 2);
  dist.step(bus_);
  EXPECT_EQ(bus_.read(map_.stopped), 0u);
  EXPECT_EQ(bus_.read(map_.slow_speed), 0u);
}

// --- PRES_S ----------------------------------------------------------------

TEST_F(ModulesTest, PresSCopiesAdcToInValue) {
  PresSModule pres(map_);
  bus_.write(map_.adc, 12345);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.in_value), 12345u);
}

// --- CALC ------------------------------------------------------------------

TEST_F(ModulesTest, CalcIdlesBeforeFirstCheckpoint) {
  CalcModule calc(map_);
  bus_.write(map_.pulscnt,
             static_cast<std::uint16_t>(CalcModule::checkpoint_pulses(0) - 1));
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.checkpoint_i), 0u);
  EXPECT_EQ(bus_.read(map_.set_value), 0u);
}

TEST_F(ModulesTest, CalcAdvancesCheckpointAndSetsPressure) {
  CalcModule calc(map_);
  bus_.write(map_.mscnt, 400);
  bus_.write(map_.pulscnt, CalcModule::checkpoint_pulses(0));
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.checkpoint_i), 1u);
  EXPECT_GT(bus_.read(map_.set_value), 0u);
}

TEST_F(ModulesTest, CalcCheckpointThresholdsAreMonotone) {
  for (int i = 1; i < kCheckpointCount; ++i) {
    EXPECT_GT(CalcModule::checkpoint_pulses(i),
              CalcModule::checkpoint_pulses(i - 1));
  }
}

TEST_F(ModulesTest, CalcStoppedReleasesBrake) {
  CalcModule calc(map_);
  bus_.write(map_.set_value, 20000);
  bus_.write(map_.stopped, 1);
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.set_value), 0u);
}

TEST_F(ModulesTest, CalcSlowSpeedCapsPressure) {
  CalcModule calc(map_);
  bus_.write(map_.set_value, 30000);
  bus_.write(map_.slow_speed, 1);
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.set_value), kSlowCreepSetValue);
  // Already below the cap: untouched.
  bus_.write(map_.set_value, 100);
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.set_value), 100u);
}

TEST_F(ModulesTest, CalcCorruptCheckpointIndexDisablesUpdates) {
  CalcModule calc(map_);
  bus_.write(map_.checkpoint_i, 6);  // all checkpoints done
  bus_.write(map_.pulscnt, 60000);
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.checkpoint_i), 6u);
  EXPECT_EQ(bus_.read(map_.set_value), 0u);
  // A wildly corrupted index behaves like "done", not a crash.
  bus_.write(map_.checkpoint_i, 40000);
  calc.step(bus_);
  EXPECT_EQ(bus_.read(map_.checkpoint_i), 40000u);
}

TEST_F(ModulesTest, CalcFasterApproachCommandsMorePressure) {
  // Same checkpoint, shorter elapsed time => higher velocity estimate =>
  // higher pressure set point.
  fi::SignalBus bus2;
  const BusMap map2 = build_bus(bus2);
  CalcModule slow_calc(map_);
  CalcModule fast_calc(map2);

  bus_.write(map_.mscnt, 800);  // slower aircraft: longer time to cp 0
  bus_.write(map_.pulscnt, CalcModule::checkpoint_pulses(0));
  slow_calc.step(bus_);

  bus2.write(map2.mscnt, 200);
  bus2.write(map2.pulscnt, CalcModule::checkpoint_pulses(0));
  fast_calc.step(bus2);

  EXPECT_GT(bus2.read(map2.set_value), bus_.read(map_.set_value));
}

// --- V_REG -----------------------------------------------------------------

TEST_F(ModulesTest, VRegTracksSetValueAtEquilibrium) {
  VRegModule vreg(map_);
  bus_.write(map_.set_value, 20000);
  bus_.write(map_.in_value, 20000);
  vreg.step(bus_);
  EXPECT_EQ(bus_.read(map_.out_value), 20000u);
}

TEST_F(ModulesTest, VRegPushesHarderWhenPressureLow) {
  VRegModule vreg(map_);
  bus_.write(map_.set_value, 20000);
  bus_.write(map_.in_value, 10000);
  vreg.step(bus_);
  EXPECT_GT(bus_.read(map_.out_value), 20000u);
}

TEST_F(ModulesTest, VRegIntegratorAccumulates) {
  VRegModule vreg(map_);
  bus_.write(map_.set_value, 20000);
  bus_.write(map_.in_value, 19000);
  vreg.step(bus_);
  const std::uint16_t first = bus_.read(map_.out_value);
  vreg.step(bus_);
  EXPECT_GT(bus_.read(map_.out_value), first);  // integral action
}

TEST_F(ModulesTest, VRegOutputClampsToValidRange) {
  VRegModule vreg(map_);
  bus_.write(map_.set_value, 65535);
  bus_.write(map_.in_value, 0);
  for (int t = 0; t < 100; ++t) vreg.step(bus_);
  EXPECT_EQ(bus_.read(map_.out_value), 65535u);

  bus_.write(map_.set_value, 0);
  bus_.write(map_.in_value, 65535);
  for (int t = 0; t < 200; ++t) vreg.step(bus_);
  EXPECT_EQ(bus_.read(map_.out_value), 0u);
}

// --- PRES_A ----------------------------------------------------------------

TEST_F(ModulesTest, PresASlewsTowardsCommand) {
  PresAModule pres(map_);
  bus_.write(map_.out_value, 10000);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), kValveSlewPerMs);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), 2 * kValveSlewPerMs);
}

TEST_F(ModulesTest, PresAReachesTargetExactly) {
  PresAModule pres(map_);
  bus_.write(map_.out_value, 3000);
  pres.step(bus_);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), 3000u);
}

TEST_F(ModulesTest, PresADeadbandIgnoresSmallChanges) {
  PresAModule pres(map_);
  bus_.write(map_.out_value, 1000);
  pres.step(bus_);
  ASSERT_EQ(bus_.read(map_.toc2), 1000u);
  bus_.write(map_.out_value, 1000 + kValveDeadband);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), 1000u);  // within the deadband
  bus_.write(map_.out_value, 1000 + kValveDeadband + 1);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), 1000u + kValveDeadband + 1);
}

TEST_F(ModulesTest, PresASlewsDownward) {
  PresAModule pres(map_);
  bus_.write(map_.out_value, 10000);
  for (int t = 0; t < 4; ++t) pres.step(bus_);
  ASSERT_EQ(bus_.read(map_.toc2), 10000u);
  bus_.write(map_.out_value, 0);
  pres.step(bus_);
  EXPECT_EQ(bus_.read(map_.toc2), 10000u - kValveSlewPerMs);
}

}  // namespace
}  // namespace propane::arr
