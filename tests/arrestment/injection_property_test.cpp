// Property tests: system-level invariants that must hold under *any*
// single injected error (parameterized over target signal x bit position).
#include <gtest/gtest.h>

#include <tuple>

#include "arrestment/constants.hpp"
#include "arrestment/model.hpp"
#include "arrestment/system.hpp"
#include "fi/golden.hpp"

namespace propane::arr {
namespace {

class InjectionProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {
 protected:
  fi::BusSignalId target() const {
    return static_cast<fi::BusSignalId>(std::get<0>(GetParam()));
  }
  unsigned bit() const { return std::get<1>(GetParam()); }

  RunOutcome run(bool inject) const {
    RunOptions options;
    options.duration = 4 * sim::kSecond;
    if (inject) {
      options.injection = fi::InjectionSpec{target(), 1500 * sim::kMillisecond,
                                            fi::bit_flip(bit())};
    }
    return run_arrestment(TestCase{12000, 65}, options);
  }
};

TEST_P(InjectionProperty, TraceShapeIsUnchanged) {
  const RunOutcome outcome = run(true);
  EXPECT_EQ(outcome.trace.sample_count(), 4000u);
  EXPECT_EQ(outcome.trace.signal_count(), kAllSignals.size());
}

TEST_P(InjectionProperty, PhysicsStaysBounded) {
  const RunOutcome outcome = run(true);
  EXPECT_GE(outcome.stop_distance_m, 0.0);
  EXPECT_LT(outcome.stop_distance_m, 2.0 * kRunwayLengthM);
  EXPECT_GE(outcome.peak_decel, 0.0);
  EXPECT_LT(outcome.peak_decel, 100.0);
}

TEST_P(InjectionProperty, SlotNumberStaysInRangeAfterClockTick) {
  // CLOCK's modulo arithmetic restores the slot range within the very
  // tick of the corruption: every *sampled* value is a valid slot.
  const RunOutcome outcome = run(true);
  fi::SignalBus bus;
  const BusMap map = build_bus(bus);
  for (std::uint16_t slot : outcome.trace.series(map.ms_slot_nbr)) {
    ASSERT_LT(slot, kSlotCount);
  }
}

TEST_P(InjectionProperty, NoDivergenceBeforeTheInjection) {
  const RunOutcome golden = run(false);
  const RunOutcome injected = run(true);
  const auto report = fi::compare_to_golden(golden.trace, injected.trace);
  for (const auto& divergence : report.per_signal) {
    if (divergence.diverged) {
      EXPECT_GE(divergence.first_ms, 1500u);
    }
  }
}

TEST_P(InjectionProperty, InjectionRunsAreDeterministic) {
  const RunOutcome a = run(true);
  const RunOutcome b = run(true);
  EXPECT_FALSE(fi::compare_to_golden(a.trace, b.trace).any_divergence());
}

TEST_P(InjectionProperty, Toc2DivergenceImpliesOutValueDivergence) {
  // TOC2 is a pure function of OutValue history: it cannot diverge first.
  // Exception: when OutValue itself is the injection target, PRES_A
  // consumes the corrupt value mid-tick and V_REG overwrites it before the
  // end-of-tick sample -- the corruption is visible in TOC2 but never in
  // the OutValue trace (transient consumed-then-overwritten error).
  fi::SignalBus bus;
  const BusMap map = build_bus(bus);
  if (target() == map.out_value || target() == map.toc2) {
    GTEST_SKIP() << "injected signal is on the checked edge";
  }
  const RunOutcome golden = run(false);
  const RunOutcome injected = run(true);
  const auto report = fi::compare_to_golden(golden.trace, injected.trace);
  const auto& toc2 = report.per_signal[map.toc2];
  const auto& out_value = report.per_signal[map.out_value];
  if (toc2.diverged) {
    ASSERT_TRUE(out_value.diverged);
    EXPECT_LE(out_value.first_ms, toc2.first_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndBits, InjectionProperty,
    ::testing::Combine(::testing::Values(0, 4, 5, 6, 9, 10, 11, 12),
                       ::testing::Values(0u, 7u, 15u)),
    [](const ::testing::TestParamInfo<std::tuple<int, unsigned>>&
           param_info) {
      return "sig" + std::to_string(std::get<0>(param_info.param)) +
             "_bit" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace propane::arr
