#include "arrestment/twonode.hpp"

#include <gtest/gtest.h>

#include "arrestment/constants.hpp"
#include "core/backtrack_tree.hpp"
#include "core/propagation_path.hpp"
#include "core/trace_tree.hpp"
#include "fi/golden.hpp"

namespace propane::arr {
namespace {

TEST(TwoNodeModel, ThirtyIoPairsTenModules) {
  const auto model = make_two_node_model();
  EXPECT_EQ(model.module_count(), 10u);
  EXPECT_EQ(model.system_input_count(), 5u);
  EXPECT_EQ(model.system_output_count(), 2u);
  EXPECT_EQ(model.io_pair_count(), 30u);
}

TEST(TwoNodeModel, SetValueFansOutToRegulatorAndLink) {
  const auto model = make_two_node_model();
  const auto calc = *model.find_module("CALC");
  const auto set_value = *model.find_output(calc, "SetValue");
  EXPECT_EQ(model.output_consumers({calc, set_value}).size(), 2u);
}

TEST(TwoNodeModel, BindingCoversAllNineteenSignals) {
  const auto model = make_two_node_model();
  const auto binding = make_two_node_binding(model);
  EXPECT_EQ(binding.size(), model.all_signals().size());
  EXPECT_EQ(model.all_signals().size(), 5u + 14u);  // inputs + outputs
}

TEST(TwoNodeModel, SeventeenInjectionTargets) {
  // Every signal except the two output registers TOC2 and TOC2_S.
  EXPECT_EQ(two_node_injection_targets().size(), 17u);
}

TEST(TwoNodeModel, SlaveBacktrackTreeRoutesThroughTheLink) {
  const auto model = make_two_node_model();
  core::SystemPermeability permeability(model);
  // TOC2_S is system output 1.
  const auto tree = core::build_backtrack_tree(model, permeability, 1);
  const auto paths = core::backtrack_paths(tree);
  // Slave output sees: InValue_S <- ADC_S (1 path) plus the link chain
  // into the master's full CALC subtree (the 21 paths that sit under
  // SetValue in Fig. 10).
  EXPECT_EQ(paths.size(), 22u);
  bool link_seen = false;
  for (const auto& node : tree.nodes()) {
    if (node.kind == core::TreeNode::Kind::kOutput &&
        model.signal_name(core::SignalRef::from_output(node.output)) ==
            "link") {
      link_seen = true;
    }
  }
  EXPECT_TRUE(link_seen);
}

TEST(TwoNodeModel, MasterTreeIsUnchangedByTheSlave) {
  const auto model = make_two_node_model();
  core::SystemPermeability permeability(model);
  const auto tree = core::build_backtrack_tree(model, permeability, 0);
  EXPECT_EQ(core::backtrack_paths(tree).size(), 22u);  // as in Fig. 10
}

TEST(TwoNodeSystemTest, ArrestsAcrossTheGrid) {
  for (const TestCase& tc : grid_test_cases(2, 2)) {
    const RunOutcome outcome = run_two_node_arrestment(tc);
    EXPECT_TRUE(outcome.arrested) << tc.name();
    EXPECT_FALSE(outcome.overrun) << tc.name();
    EXPECT_LT(outcome.stop_distance_m, kRunwayLengthM) << tc.name();
  }
}

TEST(TwoNodeSystemTest, SlaveChannelTracksTheMaster) {
  TwoNodeSystem system(TestCase{14000, 60});
  RunOptions options;
  for (int t = 0; t < 5000; ++t) system.tick(options);
  const auto& bus = system.bus();
  const auto& map = system.map();
  // Mid-arrestment both channels command comparable pressure.
  const std::uint16_t master = bus.read(map.master.toc2);
  const std::uint16_t slave = bus.read(map.toc2_s);
  EXPECT_GT(master, 1000u);
  EXPECT_NEAR(master, slave, 2000.0);
}

TEST(TwoNodeSystemTest, RunsAreDeterministic) {
  RunOptions options;
  options.duration = 2 * sim::kSecond;
  const auto a = run_two_node_arrestment(TestCase{12000, 70}, options);
  const auto b = run_two_node_arrestment(TestCase{12000, 70}, options);
  EXPECT_FALSE(fi::compare_to_golden(a.trace, b.trace).any_divergence());
}

TEST(TwoNodeSystemTest, LinkErrorReachesOnlyTheSlaveOutput) {
  fi::SignalBus reference;
  const TwoNodeBusMap map = build_two_node_bus(reference);

  RunOptions golden_options;
  golden_options.duration = 4 * sim::kSecond;
  const auto golden =
      run_two_node_arrestment(TestCase{14000, 60}, golden_options);

  RunOptions faulty = golden_options;
  faulty.injection =
      fi::InjectionSpec{map.link, 2 * sim::kSecond, fi::bit_flip(14)};
  const auto injected = run_two_node_arrestment(TestCase{14000, 60}, faulty);
  const auto report = fi::compare_to_golden(golden.trace, injected.trace);

  EXPECT_TRUE(report.per_signal[map.toc2_s].diverged);
  // The slave's divergence comes within the link refresh period.
  EXPECT_LT(report.per_signal[map.toc2_s].first_ms, 2000u + 10u);
  // The master's own actuator is only affected later, through the physics
  // (changed braking force -> changed pulse stream -> changed SetValue).
  const auto& master_toc2 = report.per_signal[map.master.toc2];
  if (master_toc2.diverged) {
    EXPECT_GT(master_toc2.first_ms,
              report.per_signal[map.toc2_s].first_ms);
  }
}

TEST(TwoNodeSystemTest, SetValueErrorReachesBothOutputs) {
  fi::SignalBus reference;
  const TwoNodeBusMap map = build_two_node_bus(reference);

  RunOptions golden_options;
  golden_options.duration = 4 * sim::kSecond;
  const auto golden =
      run_two_node_arrestment(TestCase{14000, 60}, golden_options);

  RunOptions faulty = golden_options;
  faulty.injection = fi::InjectionSpec{map.master.set_value,
                                       2 * sim::kSecond, fi::bit_flip(14)};
  const auto injected = run_two_node_arrestment(TestCase{14000, 60}, faulty);
  const auto report = fi::compare_to_golden(golden.trace, injected.trace);
  EXPECT_TRUE(report.per_signal[map.master.toc2].diverged);
  EXPECT_TRUE(report.per_signal[map.toc2_s].diverged);
}

TEST(TwoNodeSystemTest, CampaignRunnerWorksEndToEnd) {
  const auto runner =
      two_node_campaign_runner(grid_test_cases(1, 1), sim::kSecond);
  fi::RunRequest request;
  request.test_case = 0;
  const auto trace = runner(request);
  EXPECT_EQ(trace.sample_count(), 1000u);
  EXPECT_EQ(trace.signal_count(), 19u);
}

}  // namespace
}  // namespace propane::arr
