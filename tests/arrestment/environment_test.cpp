#include "arrestment/environment.hpp"

#include <gtest/gtest.h>

#include "arrestment/constants.hpp"

namespace propane::arr {
namespace {

class EnvironmentTest : public ::testing::Test {
 protected:
  EnvironmentTest() : map_(build_bus(bus_)) {}

  void run_ms(Environment& env, int ms, int start_ms = 0) {
    for (int t = 0; t < ms; ++t) {
      env.step(bus_, static_cast<sim::SimTime>(start_ms + t) *
                         sim::kMillisecond);
    }
  }

  fi::SignalBus bus_;
  BusMap map_;
};

TEST_F(EnvironmentTest, CoastsWithOnlyFrictionWhenBrakeIdle) {
  Environment env(TestCase{10000, 60}, map_);
  run_ms(env, 1000);
  // Friction 400 N*s/m at ~60 m/s over 1 s: dv ~ 2.4 m/s.
  EXPECT_LT(env.velocity_mps(), 60.0);
  EXPECT_GT(env.velocity_mps(), 56.0);
  EXPECT_NEAR(env.position_m(), 59.0, 2.0);
}

TEST_F(EnvironmentTest, FullBrakeDeceleratesHard) {
  Environment env(TestCase{10000, 60}, map_);
  bus_.write(map_.toc2, 65535);
  run_ms(env, 1000);
  // 400 kN on 10 t: ~40 m/s^2 once the pressure has built up.
  EXPECT_LT(env.velocity_mps(), 30.0);
  EXPECT_GT(env.peak_decel(), 30.0);
}

TEST_F(EnvironmentTest, PressureFollowsCommandWithLag) {
  Environment env(TestCase{10000, 60}, map_);
  bus_.write(map_.toc2, 65535);
  run_ms(env, 25);  // half a time constant
  const double half_tau = env.pressure_pa() / kMaxPressurePa;
  EXPECT_GT(half_tau, 0.25);
  EXPECT_LT(half_tau, 0.55);
  run_ms(env, 475, 25);  // ~10 time constants total
  EXPECT_GT(env.pressure_pa() / kMaxPressurePa, 0.98);
}

TEST_F(EnvironmentTest, PulsesMatchDistance) {
  Environment env(TestCase{10000, 60}, map_);
  run_ms(env, 2000);
  const double expected_pulses = env.position_m() / kMetersPerPulse;
  EXPECT_NEAR(bus_.read(map_.pacnt), expected_pulses, 2.0);
}

TEST_F(EnvironmentTest, PacntAccumulatesInPlace) {
  Environment env(TestCase{10000, 60}, map_);
  run_ms(env, 100);
  const std::uint16_t before = bus_.read(map_.pacnt);
  // Corrupt the register: subsequent counting continues from the corrupt
  // value instead of overwriting it.
  bus_.poke(map_.pacnt, static_cast<std::uint16_t>(before + 1000));
  run_ms(env, 100, 100);
  EXPECT_GT(bus_.read(map_.pacnt), before + 1000);
}

TEST_F(EnvironmentTest, TcntIsOverwrittenEveryTick) {
  Environment env(TestCase{10000, 60}, map_);
  env.step(bus_, 5 * sim::kMillisecond);
  EXPECT_EQ(bus_.read(map_.tcnt), 5000u);
  bus_.poke(map_.tcnt, 12345);
  env.step(bus_, 6 * sim::kMillisecond);
  EXPECT_EQ(bus_.read(map_.tcnt), 6000u);  // corruption erased
}

TEST_F(EnvironmentTest, Tic1LatchesTimerAtPulses) {
  Environment env(TestCase{10000, 80}, map_);  // fast: pulses every tick
  run_ms(env, 50);
  // With >1 pulse per millisecond, TIC1 tracks TCNT closely.
  const std::uint16_t delta = static_cast<std::uint16_t>(
      bus_.read(map_.tcnt) - bus_.read(map_.tic1));
  EXPECT_LT(delta, 2000u);
}

TEST_F(EnvironmentTest, AdcReflectsAppliedPressure) {
  Environment env(TestCase{10000, 60}, map_);
  bus_.write(map_.toc2, 32768);
  run_ms(env, 1000);
  const double expected =
      env.pressure_pa() / kMaxPressurePa * 65535.0;
  EXPECT_NEAR(bus_.read(map_.adc), expected, 2.0);
}

TEST_F(EnvironmentTest, AircraftStopsAndStaysStopped) {
  Environment env(TestCase{8000, 40}, map_);
  bus_.write(map_.toc2, 65535);
  run_ms(env, 5000);
  EXPECT_TRUE(env.at_rest());
  const double position = env.position_m();
  run_ms(env, 100, 5000);
  EXPECT_DOUBLE_EQ(env.position_m(), position);
}

TEST_F(EnvironmentTest, NoPulsesOnceStopped) {
  Environment env(TestCase{8000, 40}, map_);
  bus_.write(map_.toc2, 65535);
  run_ms(env, 5000);
  ASSERT_TRUE(env.at_rest());
  const std::uint16_t pacnt = bus_.read(map_.pacnt);
  run_ms(env, 500, 5000);
  EXPECT_EQ(bus_.read(map_.pacnt), pacnt);
}

TEST_F(EnvironmentTest, HeavierAircraftDeceleratesSlower) {
  Environment light(TestCase{8000, 60}, map_);
  fi::SignalBus bus2;
  const BusMap map2 = build_bus(bus2);
  Environment heavy(TestCase{20000, 60}, map2);
  bus_.write(map_.toc2, 40000);
  bus2.write(map2.toc2, 40000);
  for (int t = 0; t < 2000; ++t) {
    light.step(bus_, static_cast<sim::SimTime>(t) * sim::kMillisecond);
    heavy.step(bus2, static_cast<sim::SimTime>(t) * sim::kMillisecond);
  }
  EXPECT_LT(light.velocity_mps(), heavy.velocity_mps());
}

}  // namespace
}  // namespace propane::arr
