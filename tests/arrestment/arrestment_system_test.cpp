#include "arrestment/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "arrestment/constants.hpp"
#include "common/contracts.hpp"
#include "fi/golden.hpp"

namespace propane::arr {
namespace {

TEST(ArrestmentSystem, NominalRunArrestsWithinRunway) {
  const RunOutcome outcome = run_arrestment(TestCase{14000, 60});
  EXPECT_TRUE(outcome.arrested);
  EXPECT_FALSE(outcome.overrun);
  EXPECT_GT(outcome.stop_distance_m, 50.0);
  EXPECT_LT(outcome.stop_distance_m, kRunwayLengthM);
  EXPECT_GT(outcome.stop_ms, 1000u);
  EXPECT_LT(outcome.peak_decel, kMaxDecel * 1.5);
}

TEST(ArrestmentSystem, EveryPaperTestCaseArrests) {
  for (const TestCase& tc : paper_test_cases()) {
    const RunOutcome outcome = run_arrestment(tc);
    EXPECT_TRUE(outcome.arrested) << tc.name();
    EXPECT_FALSE(outcome.overrun) << tc.name();
  }
}

TEST(ArrestmentSystem, TraceHasMillisecondResolutionForEverySignal) {
  RunOptions options;
  options.duration = 100 * sim::kMillisecond;
  const RunOutcome outcome = run_arrestment(TestCase{14000, 60}, options);
  EXPECT_EQ(outcome.trace.sample_count(), 100u);
  EXPECT_EQ(outcome.trace.signal_count(), kAllSignals.size());
}

TEST(ArrestmentSystem, RunsAreDeterministic) {
  RunOptions options;
  options.duration = 2 * sim::kSecond;
  const RunOutcome a = run_arrestment(TestCase{11000, 70}, options);
  const RunOutcome b = run_arrestment(TestCase{11000, 70}, options);
  const auto report = fi::compare_to_golden(a.trace, b.trace);
  EXPECT_FALSE(report.any_divergence());
}

TEST(ArrestmentSystem, DifferentTestCasesDiverge) {
  RunOptions options;
  options.duration = 2 * sim::kSecond;
  const RunOutcome a = run_arrestment(TestCase{11000, 70}, options);
  const RunOutcome b = run_arrestment(TestCase{11000, 71}, options);
  const auto report = fi::compare_to_golden(a.trace, b.trace);
  EXPECT_TRUE(report.any_divergence());
}

TEST(ArrestmentSystem, SlotNumberCyclesThroughSevenSlots) {
  ArrestmentSystem system(TestCase{14000, 60});
  RunOptions options;
  for (int t = 0; t < 21; ++t) {
    system.tick(options);
    EXPECT_EQ(system.bus().read(system.map().ms_slot_nbr), t % 7);
  }
}

TEST(ArrestmentSystem, MscntTracksMilliseconds) {
  ArrestmentSystem system(TestCase{14000, 60});
  RunOptions options;
  for (int t = 1; t <= 50; ++t) {
    system.tick(options);
    EXPECT_EQ(system.bus().read(system.map().mscnt), t);
  }
}

TEST(ArrestmentSystem, PulscntIsMonotoneInGoldenRun) {
  const RunOutcome outcome = run_arrestment(TestCase{14000, 60});
  const auto pulses = outcome.trace.series(6);  // pulscnt bus id
  for (std::size_t t = 1; t < pulses.size(); ++t) {
    EXPECT_GE(pulses[t], pulses[t - 1]);
  }
  EXPECT_GT(pulses.back(), 1000u);
}

TEST(ArrestmentSystem, CheckpointIndexReachesSix) {
  const RunOutcome outcome = run_arrestment(TestCase{14000, 80});
  const auto index = outcome.trace.series(9);  // i bus id
  EXPECT_EQ(index.back(), 6u);
  for (std::size_t t = 1; t < index.size(); ++t) {
    EXPECT_GE(index[t], index[t - 1]);
  }
}

TEST(ArrestmentSystem, StoppedFlagRaisedAfterArrest) {
  const RunOutcome outcome = run_arrestment(TestCase{8000, 40});
  ASSERT_TRUE(outcome.arrested);
  const auto stopped = outcome.trace.series(8);  // stopped bus id
  EXPECT_EQ(stopped.back(), 1u);
  // The flag lags the physical stop by the detection gap.
  const std::size_t first_set =
      static_cast<std::size_t>(std::find(stopped.begin(), stopped.end(), 1) -
                               stopped.begin());
  EXPECT_GT(first_set, static_cast<std::size_t>(outcome.stop_ms));
}

TEST(ArrestmentSystem, InjectionFiresAtRequestedMillisecond) {
  RunOptions options;
  options.duration = 3 * sim::kSecond;
  options.injection = fi::InjectionSpec{
      5 /* ms_slot_nbr */, 1 * sim::kSecond, fi::bit_flip(2)};
  RunOptions golden_options;
  golden_options.duration = options.duration;
  const RunOutcome golden =
      run_arrestment(TestCase{14000, 60}, golden_options);
  const RunOutcome injected = run_arrestment(TestCase{14000, 60}, options);
  const auto report = fi::compare_to_golden(golden.trace, injected.trace);
  ASSERT_TRUE(report.per_signal[5].diverged);
  EXPECT_EQ(report.per_signal[5].first_ms, 1000u);
}

TEST(ArrestmentSystem, SlotErrorShiftsScheduleForever) {
  RunOptions options;
  options.duration = 3 * sim::kSecond;
  options.injection = fi::InjectionSpec{
      5 /* ms_slot_nbr */, 1 * sim::kSecond, fi::bit_flip(1)};
  RunOptions golden_options;
  golden_options.duration = options.duration;
  const RunOutcome golden =
      run_arrestment(TestCase{14000, 60}, golden_options);
  const RunOutcome injected = run_arrestment(TestCase{14000, 60}, options);
  const auto golden_slots = golden.trace.series(5);
  const auto injected_slots = injected.trace.series(5);
  // Once shifted, the phase never recovers (permeability 1 on the
  // feedback pair).
  for (std::size_t t = 1100; t < golden_slots.size(); ++t) {
    EXPECT_NE(golden_slots[t], injected_slots[t]);
  }
}

TEST(ArrestmentSystem, ErmWrapperContainsInjectedError) {
  // Clamp SetValue to its plausible ceiling; a high-bit flip is then
  // corrected before V_REG consumes it.
  RunOptions golden_options;
  golden_options.duration = 4 * sim::kSecond;
  const RunOutcome golden =
      run_arrestment(TestCase{14000, 60}, golden_options);

  RunOptions faulty = golden_options;
  faulty.injection =
      fi::InjectionSpec{10 /* SetValue */, 2 * sim::kSecond,
                        fi::set_value(65535)};
  const RunOutcome unprotected =
      run_arrestment(TestCase{14000, 60}, faulty);
  EXPECT_TRUE(fi::compare_to_golden(golden.trace, unprotected.trace)
                  .per_signal[13]
                  .diverged);  // TOC2 affected

  fi::ErmHarness erms;
  erms.add(std::make_unique<fi::HoldLastGoodErm>(10, 0, 40000));
  RunOptions protected_run = faulty;
  protected_run.erms = &erms;
  const RunOutcome recovered =
      run_arrestment(TestCase{14000, 60}, protected_run);
  EXPECT_TRUE(erms.recovered());
  EXPECT_FALSE(fi::compare_to_golden(golden.trace, recovered.trace)
                   .per_signal[13]
                   .diverged);
}

TEST(ArrestmentSystem, EdmMonitorSeesInjectedRangeViolation) {
  fi::EdmMonitor monitor;
  monitor.add(std::make_unique<fi::RangeEdm>(10 /* SetValue */, 0, 40000));
  RunOptions options;
  options.duration = 4 * sim::kSecond;
  options.injection = fi::InjectionSpec{10, 2 * sim::kSecond,
                                        fi::set_value(65535)};
  options.monitor = &monitor;
  run_arrestment(TestCase{14000, 60}, options);
  ASSERT_TRUE(monitor.detected());
  EXPECT_EQ(*monitor.first_detection_ms(), 2000u);
}

TEST(ArrestmentSystem, PreBackgroundTrapReachesTheBackgroundTask) {
  // A slow_speed flip at tick start is erased by DIST_S before CALC reads
  // it; the same flip at the pre-background trap reaches CALC and caps
  // SetValue.
  fi::SignalBus reference;
  const BusMap map = build_bus(reference);

  RunOptions golden_options;
  golden_options.duration = 4 * sim::kSecond;
  const RunOutcome golden =
      run_arrestment(TestCase{14000, 60}, golden_options);

  auto run_with_phase = [&](fi::InjectionPhase phase) {
    RunOptions options = golden_options;
    fi::InjectionSpec spec{map.slow_speed, 2 * sim::kSecond,
                           fi::bit_flip(0)};
    spec.phase = phase;
    options.injection = spec;
    return run_arrestment(TestCase{14000, 60}, options);
  };

  const auto write_site = run_with_phase(fi::InjectionPhase::kTickStart);
  EXPECT_FALSE(fi::compare_to_golden(golden.trace, write_site.trace)
                   .per_signal[map.set_value]
                   .diverged);

  const auto read_site = run_with_phase(fi::InjectionPhase::kPreBackground);
  const auto report = fi::compare_to_golden(golden.trace, read_site.trace);
  EXPECT_TRUE(report.per_signal[map.set_value].diverged);
  EXPECT_EQ(report.per_signal[map.set_value].first_ms, 2000u);
}

TEST(ArrestmentSystem, EventTraceRecordsTheArrestmentTimeline) {
  fi::EventLog events;
  RunOptions options;
  options.events = &events;
  const RunOutcome outcome = run_arrestment(TestCase{14000, 70}, options);
  ASSERT_TRUE(outcome.arrested);

  // All six checkpoints fire, in order, before the slow/stop phase.
  for (int cp = 1; cp <= 6; ++cp) {
    ASSERT_TRUE(events.first("checkpoint-" + std::to_string(cp)).has_value())
        << cp;
  }
  EXPECT_LT(*events.first("checkpoint-1"), *events.first("checkpoint-2"));
  EXPECT_LT(*events.first("checkpoint-6"), *events.first("stopped"));
  EXPECT_TRUE(events.first("brake-engaged").has_value());
  EXPECT_GT(*events.first("brake-engaged"), *events.first("checkpoint-1"));
  EXPECT_TRUE(events.first("slow-speed-set").has_value());
  // The stopped flag is raised after the physical stop.
  EXPECT_GT(*events.first("stopped"), outcome.stop_ms);
}

TEST(ArrestmentSystem, InjectionShiftsTheEventTimeline) {
  fi::EventLog golden_events;
  RunOptions golden_options;
  golden_options.events = &golden_events;
  run_arrestment(TestCase{14000, 70}, golden_options);

  fi::EventLog injected_events;
  RunOptions faulty;
  faulty.events = &injected_events;
  faulty.injection = fi::InjectionSpec{6 /* pulscnt */, 1 * sim::kSecond,
                                       fi::bit_flip(9)};
  run_arrestment(TestCase{14000, 70}, faulty);

  const auto divergence =
      compare_event_logs(golden_events, injected_events);
  EXPECT_TRUE(divergence.diverged());
}

TEST(ArrestmentSystem, CampaignRunnerDispatchesTestCases) {
  const auto runner = campaign_runner(grid_test_cases(1, 2),
                                      500 * sim::kMillisecond);
  fi::RunRequest request;
  request.test_case = 0;
  const auto trace_slow = runner(request);
  request.test_case = 1;
  const auto trace_fast = runner(request);
  EXPECT_TRUE(
      fi::compare_to_golden(trace_slow, trace_fast).any_divergence());
  request.test_case = 2;
  EXPECT_THROW(runner(request), ContractViolation);
}

}  // namespace
}  // namespace propane::arr
